/**
 * @file
 * ocor_verify: bounded model checking of the lock/wakeup protocol
 * (DESIGN.md §15).
 *
 *   ocor_verify explore [--threads N] [--acqs N] [--budget N]
 *                       [--strict-arb] [--bug NAME]
 *                       [--max-states N] [--out FILE]
 *   ocor_verify replay FILE [--verbose]
 *   ocor_verify suite [--out-dir DIR] [--smoke-states N]
 *
 * Exit codes: 0 = clean / replay reproduced, 1 = usage or internal
 * error, 3 = violation found (explore/suite) or replay failed to
 * reproduce the expected runtime checker.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "verify/counterexample.hh"
#include "verify/explorer.hh"
#include "verify/model.hh"
#include "verify/replay.hh"

namespace
{

using namespace ocor;
using namespace ocor::verify;

int
usage()
{
    std::cerr <<
        "usage: ocor_verify explore [--threads N] [--acqs N]\n"
        "                           [--budget N] [--strict-arb]\n"
        "                           [--bug NAME] [--max-states N]\n"
        "                           [--out FILE]\n"
        "       ocor_verify replay FILE [--verbose]\n"
        "       ocor_verify suite [--out-dir DIR]"
        " [--smoke-states N]\n"
        "\n"
        "bugs: none force-hold arb-invert lost-wake rtr-raise\n";
    return 1;
}

bool
parseUnsigned(const char *text, unsigned &out)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text, &end, 10);
    if (!end || *end != '\0')
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

void
printStats(const VerifyConfig &cfg, const ExploreResult &res)
{
    std::printf("%-44s %9llu states %10llu transitions depth %3u%s\n",
                cfg.describe().c_str(),
                static_cast<unsigned long long>(res.stats.states),
                static_cast<unsigned long long>(res.stats.transitions),
                res.stats.maxDepth, res.capped ? " (capped)" : "");
}

int
cmdExplore(const std::vector<std::string> &args)
{
    VerifyConfig cfg;
    std::uint64_t maxStates = 0;
    std::string outFile;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&]() -> const char * {
            return i + 1 < args.size() ? args[++i].c_str() : nullptr;
        };
        unsigned v = 0;
        if (a == "--threads" && next() &&
            parseUnsigned(args[i].c_str(), v)) {
            cfg.threads = v;
        } else if (a == "--acqs" &&
                   next() && parseUnsigned(args[i].c_str(), v)) {
            cfg.acquisitions = v;
        } else if (a == "--budget" &&
                   next() && parseUnsigned(args[i].c_str(), v)) {
            cfg.spinBudget = v;
        } else if (a == "--max-states" &&
                   next() && parseUnsigned(args[i].c_str(), v)) {
            maxStates = v;
        } else if (a == "--strict-arb") {
            cfg.strictArb = true;
        } else if (a == "--bug") {
            const char *name = next();
            if (!name)
                return usage();
            cfg.bug = bugFromName(name);
            if (cfg.bug == BugKind::NumBugs) {
                std::cerr << "unknown bug '" << name << "'\n";
                return 1;
            }
        } else if (a == "--out") {
            const char *f = next();
            if (!f)
                return usage();
            outFile = f;
        } else {
            return usage();
        }
    }

    if (cfg.threads < 2 || cfg.threads > 6 ||
        cfg.acquisitions == 0 || cfg.spinBudget == 0) {
        std::cerr << "explore: need 2..6 threads and non-zero "
                     "acqs/budget\n";
        return 1;
    }

    ExploreResult res = explore(cfg, maxStates);
    printStats(cfg, res);

    if (res.clean()) {
        std::printf("no violations\n");
        return 0;
    }

    std::printf("VIOLATION %s: %s\n", propertyName(res.violated),
                res.detail.c_str());
    Counterexample ce;
    ce.cfg = cfg;
    ce.violated = res.violated;
    ce.detail = res.detail;
    ce.schedule = res.schedule;
    std::printf("counterexample (%zu steps):\n", ce.schedule.size());
    for (const ScheduleStep &st : ce.schedule)
        std::printf("  %s\n", st.describe().c_str());
    if (!outFile.empty()) {
        std::ofstream out(outFile);
        if (!out) {
            std::cerr << "cannot write " << outFile << "\n";
            return 1;
        }
        writeCounterexample(out, ce);
        std::printf("written to %s\n", outFile.c_str());
    }
    return 3;
}

int
cmdReplay(const std::vector<std::string> &args)
{
    std::string file;
    bool verbose = false;
    for (const std::string &a : args) {
        if (a == "--verbose" || a == "-v")
            verbose = true;
        else if (!a.empty() && a[0] == '-')
            return usage();
        else if (file.empty())
            file = a;
        else
            return usage();
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::cerr << "cannot open " << file << "\n";
        return 1;
    }
    Counterexample ce;
    std::string error;
    if (!readCounterexample(in, ce, error)) {
        std::cerr << file << ": " << error << "\n";
        return 1;
    }

    std::printf("replaying %s (%zu steps, property %s)\n",
                ce.cfg.describe().c_str(), ce.schedule.size(),
                propertyName(ce.violated));

    if (!replayThroughModel(ce, error)) {
        std::cerr << "model replay diverged: " << error << "\n";
        return 3;
    }
    std::printf("model replay: schedule reproduces %s\n",
                propertyName(ce.violated));

    ReplayResult res = replay(ce, verbose ? &std::cout : nullptr);
    if (!res.ok) {
        std::cerr << "component replay stuck: " << res.error << "\n";
        if (!res.diagnostics.empty())
            std::cerr << res.diagnostics;
        return 3;
    }

    for (const CheckViolation &v : res.violations)
        std::printf("  checker %s @%llu: %s\n", checkName(v.id),
                    static_cast<unsigned long long>(v.cycle),
                    v.message.c_str());

    if (ce.violated == Property::None) {
        if (res.violations.empty()) {
            std::printf("clean schedule replayed with zero "
                        "violations\n");
            return 0;
        }
        std::cerr << "clean schedule tripped " <<
            res.violations.size() << " runtime violation(s)\n";
        std::cerr << res.diagnostics;
        return 3;
    }

    CheckId want = expectedChecker(ce.violated);
    if (want == CheckId::NumChecks) {
        std::printf("property %s has no runtime checker; model "
                    "replay suffices\n", propertyName(ce.violated));
        return 0;
    }
    if (res.triggered(want)) {
        std::printf("runtime checker %s reproduced the violation\n",
                    checkName(want));
        return 0;
    }
    std::cerr << "expected runtime checker " << checkName(want)
              << " did not fire\n";
    std::cerr << res.diagnostics;
    return 3;
}

int
cmdSuite(const std::vector<std::string> &args)
{
    std::string outDir;
    unsigned smokeStates = 400000;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--out-dir" && i + 1 < args.size()) {
            outDir = args[++i];
        } else if (args[i] == "--smoke-states" && i + 1 < args.size()) {
            if (!parseUnsigned(args[i + 1].c_str(), smokeStates))
                return usage();
            ++i;
        } else {
            return usage();
        }
    }

    struct Entry
    {
        VerifyConfig cfg;
        std::uint64_t maxStates = 0;
    };
    std::vector<Entry> entries;
    // Exhaustive tier: every 2-thread config up to 2 acquisitions
    // and every 3-thread single-acquisition config (the largest is
    // ~0.5M canonical states — seconds, not minutes).
    for (unsigned threads : {2u, 3u})
        for (unsigned acqs : {1u, 2u}) {
            if (threads == 3 && acqs == 2)
                continue; // >8M states even under symmetry: smoke
            for (unsigned budget : {1u, 2u})
                for (bool strict : {false, true}) {
                    VerifyConfig cfg;
                    cfg.threads = threads;
                    cfg.acquisitions = acqs;
                    cfg.spinBudget = budget;
                    cfg.strictArb = strict;
                    entries.push_back({cfg, 0});
                }
        }
    // Bounded smokes: the two configs whose full space outgrows CI
    // (re-acquisition races at 3 threads; 4-way contention). A
    // capped frontier still proves every state within the explored
    // radius clean.
    {
        VerifyConfig cfg;
        cfg.threads = 3;
        cfg.acquisitions = 2;
        cfg.spinBudget = 1;
        cfg.strictArb = true;
        entries.push_back({cfg, smokeStates});
    }
    {
        VerifyConfig cfg;
        cfg.threads = 4;
        cfg.acquisitions = 1;
        cfg.spinBudget = 1;
        cfg.strictArb = true;
        entries.push_back({cfg, smokeStates});
    }

    std::uint64_t totalStates = 0, totalTransitions = 0;
    int rc = 0;
    for (const Entry &e : entries) {
        ExploreResult res = explore(e.cfg, e.maxStates);
        printStats(e.cfg, res);
        totalStates += res.stats.states;
        totalTransitions += res.stats.transitions;
        if (res.clean())
            continue;
        rc = 3;
        std::printf("VIOLATION %s: %s\n", propertyName(res.violated),
                    res.detail.c_str());
        if (!outDir.empty()) {
            Counterexample ce;
            ce.cfg = e.cfg;
            ce.violated = res.violated;
            ce.detail = res.detail;
            ce.schedule = res.schedule;
            std::ostringstream name;
            name << outDir << "/ce-" << propertyName(res.violated)
                 << "-t" << e.cfg.threads << "-a"
                 << e.cfg.acquisitions << "-b" << e.cfg.spinBudget
                 << (e.cfg.strictArb ? "-strict" : "") << ".txt";
            std::ofstream out(name.str());
            if (out) {
                writeCounterexample(out, ce);
                std::printf("counterexample written to %s\n",
                            name.str().c_str());
            } else {
                std::cerr << "cannot write " << name.str() << "\n";
            }
        }
    }

    std::printf("suite total: %llu states, %llu transitions over "
                "%zu configs\n",
                static_cast<unsigned long long>(totalStates),
                static_cast<unsigned long long>(totalTransitions),
                entries.size());
    if (rc == 0)
        std::printf("all configs clean\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::vector<std::string> args(argv + 2, argv + argc);
    std::string cmd = argv[1];
    if (cmd == "explore")
        return cmdExplore(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "suite")
        return cmdSuite(args);
    return usage();
}
