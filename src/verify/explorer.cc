#include "verify/explorer.hh"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <utility>

namespace ocor
{
namespace verify
{

namespace
{

/**
 * Path metadata for one reached state. The state itself lives only
 * in the frontier until expansion — keeping every WorldState alive
 * for the whole search multiplies memory by the full state count,
 * and only the edge chain is needed to rebuild a counterexample.
 */
struct Node
{
    std::int64_t parent = -1; ///< index into the node arena
    ScheduleStep step;        ///< edge from parent (root: unused)
    unsigned depth = 0;
};

std::vector<ScheduleStep>
schedulePath(const std::vector<Node> &arena, std::int64_t idx)
{
    std::vector<ScheduleStep> path;
    for (std::int64_t i = idx; i >= 0 && arena[i].parent >= 0;
         i = arena[i].parent)
        path.push_back(arena[i].step);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace

ExploreResult
explore(const VerifyConfig &cfg, std::uint64_t maxStates)
{
    ExploreResult out;

    std::vector<Node> arena;
    std::unordered_set<std::string> visited;
    std::deque<std::pair<WorldState, std::int64_t>> frontier;

    WorldState root = initialState(cfg);
    visited.insert(canonicalKey(cfg, root));
    arena.push_back({});
    out.stats.states = 1;

    {
        StepOutcome init = checkState(cfg, root, false);
        if (init.violated != Property::None) {
            out.violated = init.violated;
            out.detail = init.detail;
            return out;
        }
    }
    frontier.emplace_back(std::move(root), 0);

    while (!frontier.empty()) {
        const WorldState curState = std::move(frontier.front().first);
        const std::int64_t cur = frontier.front().second;
        frontier.pop_front();

        const unsigned curDepth = arena[cur].depth;
        out.stats.maxDepth = std::max(out.stats.maxDepth, curDepth);

        std::vector<ScheduleStep> steps =
            enabledSteps(cfg, curState);

        if (steps.empty()) {
            StepOutcome term = checkState(cfg, curState, true);
            if (term.violated != Property::None) {
                out.violated = term.violated;
                out.detail = term.detail;
                out.schedule = schedulePath(arena, cur);
                return out;
            }
            continue;
        }

        for (ScheduleStep &step : steps) {
            WorldState next = curState;
            StepOutcome so = applyStep(cfg, next, step);
            ++out.stats.transitions;

            if (so.violated == Property::None)
                so = checkState(cfg, next, false);
            if (so.violated != Property::None) {
                arena.push_back({cur, step, curDepth + 1});
                out.violated = so.violated;
                out.detail = so.detail;
                out.schedule = schedulePath(
                    arena,
                    static_cast<std::int64_t>(arena.size()) - 1);
                return out;
            }

            if (!visited.insert(canonicalKey(cfg, next)).second)
                continue;

            if (maxStates && out.stats.states >= maxStates) {
                out.capped = true;
                continue; // count no new states; drain the frontier
            }

            arena.push_back({cur, step, curDepth + 1});
            frontier.emplace_back(
                std::move(next),
                static_cast<std::int64_t>(arena.size()) - 1);
            ++out.stats.states;
        }
    }

    return out;
}

} // namespace verify
} // namespace ocor
