/**
 * @file
 * Counterexample replay against the real implementation
 * (DESIGN.md §15).
 *
 * A schedule found by the model checker is only trusted once the
 * *actual* components reproduce it: the replay harness instantiates
 * real QSpinlock clients and a real LockManager home, arms the full
 * runtime checker registry plus the lock-event trace ring, and
 * re-executes the schedule step by step — delivering each captured
 * packet in exactly the scheduled order and advancing a concrete
 * cycle clock far enough to realize each abstract timing choice
 * (budget expiry becomes a jump past the real sleep deadline).
 *
 * A seeded-bug counterexample must make the *matching* runtime
 * checker fire (expectedChecker()): force-hold -> Mutex, lost-wake
 * -> Wakeup, arb-invert -> Arbitration, rtr-raise -> Rtr. The two
 * header-level bugs replay at checker-hook granularity (the raised
 * RTR stamps / the inverted grant decision cannot be produced by
 * correct hardware, so the harness feeds the schedule's recorded
 * stamps and candidate sets straight to the hooks); the protocol
 * bugs replay through the real client/home state machines.
 *
 * Clean schedules must replay with zero violations — the harness
 * doubles as a differential test between model and implementation.
 */

#ifndef OCOR_VERIFY_REPLAY_HH
#define OCOR_VERIFY_REPLAY_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "check/checkers.hh"
#include "verify/counterexample.hh"

namespace ocor
{
namespace verify
{

/** Outcome of re-executing a counterexample. */
struct ReplayResult
{
    /** Every step executed (false: `error` says where it stuck). */
    bool ok = false;
    std::string error;

    /** Violations the runtime checkers reported during replay. */
    std::vector<CheckViolation> violations;

    /** Trace-ring tail + checker diagnostics at end of replay. */
    std::string diagnostics;

    bool
    triggered(CheckId id) const
    {
        for (const CheckViolation &v : violations)
            if (v.id == id)
                return true;
        return false;
    }
};

/** Runtime checker a violated model property must trip during
 * replay (NumChecks: the property has no runtime counterpart). */
CheckId expectedChecker(Property p);

/** Re-execute @p ce against real components; @p log gets a
 * step-by-step narration when non-null. */
ReplayResult replay(const Counterexample &ce,
                    std::ostream *log = nullptr);

/**
 * Re-apply @p ce.schedule through the abstract model and confirm it
 * reproduces @p ce.violated. Validates parsed files before the
 * heavier real-component replay.
 */
bool replayThroughModel(const Counterexample &ce, std::string &error);

} // namespace verify
} // namespace ocor

#endif // OCOR_VERIFY_REPLAY_HH
