/**
 * @file
 * Abstract transition system of the lock/wakeup protocol
 * (DESIGN.md §15).
 *
 * The model lifts QSpinlock + LockManager into a small world state —
 * N abstract clients, one lock home, and an unordered set of
 * in-flight messages — whose transitions are driven by *exactly the
 * same* pure step functions the simulator runs (proto::clientStep /
 * proto::homeStep). Nothing protocol-relevant is re-implemented
 * here: the model cannot drift from the implementation, because it
 * IS the implementation minus time.
 *
 * Time abstraction. The two time-dependent predicates of the client
 * (timer due, spin budget expired) become nondeterministic inputs:
 * a timer may fire whenever armed, and budget expiry is enumerated
 * both ways, bounded by an explicit per-attempt retry budget that
 * strictly decreases — so every real timing is covered and the state
 * space stays finite. Message delivery is likewise nondeterministic:
 * any in-flight message may be delivered next (with an optional
 * strict-arbitration mode restricting home-bound delivery to the
 * highest Table-1 rank, modelling an ideal OCOR NoC).
 *
 * Seeded bugs (BugKind) inject one protocol defect each so the
 * checker's counterexample machinery can be validated end-to-end:
 * the resulting schedule replays against the real components and
 * must trigger the matching runtime checker (src/verify/replay.hh).
 */

#ifndef OCOR_VERIFY_MODEL_HH
#define OCOR_VERIFY_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/ocor_config.hh"
#include "core/priority.hh"
#include "os/protocol_step.hh"

namespace ocor
{
namespace verify
{

/** One deliberately seeded protocol defect (None = verify). */
enum class BugKind : std::uint8_t
{
    None,      ///< fault-free protocol: all properties must hold
    ForceHold, ///< client 0 believes it holds the lock (testForceHold)
    ArbInvert, ///< arbitration grants the *lowest* Table-1 rank
    LostWake,  ///< a WakeNotify can be dropped in flight
    RtrRaise,  ///< retries stamp a *rising* RTR
    NumBugs
};

const char *bugName(BugKind b);
BugKind bugFromName(const std::string &name);

/** One bounded exploration configuration. */
struct VerifyConfig
{
    unsigned threads = 2;      ///< abstract clients (2..4 practical)
    unsigned acquisitions = 1; ///< lock acquisitions per client
    unsigned spinBudget = 1;   ///< remote retries before sleep forced
    bool strictArb = false;    ///< ideal-OCOR home-bound delivery
    BugKind bug = BugKind::None;

    /** Max grants to others while one client waits (0 = derive the
     * trivially safe bound (threads-1)*acquisitions). */
    unsigned overtakeBound = 0;

    /** Priority encoding shared with the simulator (OCOR on, so
     * Table-1 ranks actually differ between competing messages). */
    OcorConfig ocor = defaultOcor();

    static OcorConfig
    defaultOcor()
    {
        OcorConfig c;
        c.enabled = true;
        return c;
    }

    unsigned effectiveOvertakeBound() const
    {
        return overtakeBound ? overtakeBound
                             : (threads - 1) * acquisitions;
    }

    std::string describe() const;
};

/** An in-flight protocol message (node-less: thread i lives on
 * abstract node i; the single modelled lock lives at the home). */
struct Msg
{
    proto::MsgKind kind = proto::MsgKind::LockTry;

    /** Client-bound: the target client. Home-bound: the sender. */
    ThreadId tid = invalidThread;

    unsigned rtr = 1;       ///< stamped RTR (LockTry; 1 otherwise)
    std::uint64_t prog = 0; ///< stamped PROG of the issuing thread

    /**
     * Send order on the sender's thread->home channel (0 for
     * client-bound messages, which deliver in any order). The real
     * NoC routes same-flow packets over one deterministic path, so
     * a client's LockRelease can never be overtaken by its next
     * LockTry; without this the model reports phantom re-grant
     * mutex violations the hardware cannot exhibit. Excluded from
     * operator== — at most one instance of a (kind, tid) pair is
     * ever in flight per channel, so identity never needs it.
     */
    unsigned seq = 0;

    bool operator==(const Msg &o) const
    {
        return kind == o.kind && tid == o.tid && rtr == o.rtr &&
            prog == o.prog;
    }
};

/** True for kinds processed by the home (rest go to a client). */
bool homeBound(proto::MsgKind k);

/** Table-1 rank of an in-flight home-bound message. */
std::uint64_t msgRank(const OcorConfig &ocor, const Msg &m);

/** Abstract per-client state: the pure protocol core plus the
 * bounded counters replacing real time. */
struct ThreadModel
{
    proto::ClientState cs;

    unsigned acqsLeft = 0;   ///< acquisitions not yet completed
    unsigned budgetLeft = 0; ///< remote retries left this attempt
    unsigned lastRtr = 0;    ///< last stamped RTR (0 = none yet)
    std::uint64_t prog = 0;  ///< completed critical sections
    bool wakePending = false; ///< deferred FUTEX_WAKE to fire
    unsigned overtaken = 0;  ///< grants to others since wait start
};

/** The complete abstract world state. */
struct WorldState
{
    std::vector<ThreadModel> threads;
    proto::HomeLockState home;
    bool wakeRetryPending = false; ///< home wakeRetryDelay token
    std::vector<Msg> msgs;         ///< in-flight, unordered

    /** Canonical byte encoding (msgs sorted) for visited-set keys. */
    std::string encode() const;
};

/** The kinds of schedule steps (transition labels). */
enum class StepKind : std::uint8_t
{
    Acquire,      ///< thread begins an acquisition
    Deliver,      ///< an in-flight message is delivered
    Drop,         ///< an in-flight message is lost (LostWake bug)
    Timer,        ///< a client timer fires
    Release,      ///< the holder leaves its (zero-length) CS
    FireWake,     ///< the deferred FUTEX_WAKE goes out
    FireWakeRetry ///< the home's wake-retry safety net fires
};

const char *stepKindName(StepKind k);

/** One transition, fully labelled for counterexample replay. */
struct ScheduleStep
{
    StepKind kind = StepKind::Acquire;
    ThreadId tid = invalidThread;  ///< acting / target thread
    proto::MsgKind msg = proto::MsgKind::NumKinds; ///< Deliver/Drop
    bool budgetExhausted = false;  ///< Timer / Deliver(LockFail)
    unsigned rtr = 0;              ///< RTR stamped by a SendTry
    std::uint64_t prog = 0;        ///< PROG of the acting thread

    /** Competing home-bound messages at a strict-arbitration
     * delivery (winner first excluded); empty otherwise. */
    std::vector<Msg> rivals;

    std::string describe() const;
};

/** Violated property classes the explorer can report. */
enum class Property : std::uint8_t
{
    None,
    Mutex,       ///< two clients hold the lock at once
    Deadlock,    ///< stuck state with work left, nobody sleeping
    LostWakeup,  ///< stuck state with a client parked forever
    RtrMonotone, ///< a retry stamped a higher RTR than its elder
    Arbitration, ///< a lower-rank message beat a higher-rank rival
    Overtaking   ///< a waiter was overtaken past the bound
};

const char *propertyName(Property p);
Property propertyFromName(const std::string &name);

/** Result of applying one step (violations found *during* the
 * transition, e.g. a non-monotonic RTR stamp). */
struct StepOutcome
{
    Property violated = Property::None;
    std::string detail;
};

/** Build the initial world state (seeds ForceHold if configured). */
WorldState initialState(const VerifyConfig &cfg);

/** Enumerate every transition enabled in @p s. */
std::vector<ScheduleStep> enabledSteps(const VerifyConfig &cfg,
                                       const WorldState &s);

/**
 * Apply @p step to @p s in place. The step must come from
 * enabledSteps() on the same state (panics otherwise).
 */
StepOutcome applyStep(const VerifyConfig &cfg, WorldState &s,
                      ScheduleStep &step);

/**
 * Check the *state* properties of @p s: mutual exclusion, and (when
 * @p terminal, i.e. enabledSteps() is empty) deadlock / lost-wakeup.
 */
StepOutcome checkState(const VerifyConfig &cfg, const WorldState &s,
                       bool terminal);

/**
 * Visited-set key for @p s: the lexicographically smallest encode()
 * over every thread permutation the configuration allows (clean
 * configs are fully thread-symmetric; ForceHold pins thread 0).
 * Symmetry reduction shrinks the explored space by up to threads!
 * without losing violations — any behaviour of a pruned state is a
 * thread-renaming of a behaviour of its kept representative, and
 * every checked property is invariant under renaming.
 */
std::string canonicalKey(const VerifyConfig &cfg,
                         const WorldState &s);

} // namespace verify
} // namespace ocor

#endif // OCOR_VERIFY_MODEL_HH
