/**
 * @file
 * Counterexample replay files (DESIGN.md §15).
 *
 * A violation found by the explorer serializes to a small
 * line-oriented text file: the configuration that produced it, the
 * violated property, and the minimal schedule, one step per line.
 * The format is deliberately human-first — a counterexample is a
 * debugging artifact — and stable, because the replay ctest and the
 * CI artifact upload both depend on parsing it back.
 *
 *   ocor-verify-counterexample v1
 *   config threads=2 acqs=1 budget=1 strictarb=0 bug=force-hold
 *   property mutex
 *   detail threads t0 t1 hold the lock simultaneously
 *   step acquire t=1
 *   step deliver kind=LockTry t=1 rtr=1 prog=0
 *   step deliver kind=LockGrant t=1 rtr=1 prog=0
 *   end
 *
 * Deliver steps at a strict arbitration point carry the competing
 * rivals (`rivals=LockTry:0:2:0,...`) so the replay can reconstruct
 * the candidate set the runtime ArbitrationChecker judges.
 */

#ifndef OCOR_VERIFY_COUNTEREXAMPLE_HH
#define OCOR_VERIFY_COUNTEREXAMPLE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "verify/explorer.hh"
#include "verify/model.hh"

namespace ocor
{
namespace verify
{

/** A parsed (or to-be-written) counterexample. */
struct Counterexample
{
    VerifyConfig cfg;
    Property violated = Property::None;
    std::string detail;
    std::vector<ScheduleStep> schedule;
};

/** Serialize to the replay format. */
void writeCounterexample(std::ostream &os, const Counterexample &ce);

/**
 * Parse a replay file. Returns false (with @p error set) on any
 * malformed line — a replay must never silently skip steps.
 */
bool readCounterexample(std::istream &is, Counterexample &ce,
                        std::string &error);

} // namespace verify
} // namespace ocor

#endif // OCOR_VERIFY_COUNTEREXAMPLE_HH
