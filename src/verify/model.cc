#include "verify/model.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace ocor
{
namespace verify
{

const char *
bugName(BugKind b)
{
    switch (b) {
      case BugKind::None:      return "none";
      case BugKind::ForceHold: return "force-hold";
      case BugKind::ArbInvert: return "arb-invert";
      case BugKind::LostWake:  return "lost-wake";
      case BugKind::RtrRaise:  return "rtr-raise";
      default:                 return "?";
    }
}

BugKind
bugFromName(const std::string &name)
{
    for (unsigned b = 0;
         b < static_cast<unsigned>(BugKind::NumBugs); ++b) {
        BugKind bug = static_cast<BugKind>(b);
        if (name == bugName(bug))
            return bug;
    }
    return BugKind::NumBugs;
}

const char *
stepKindName(StepKind k)
{
    switch (k) {
      case StepKind::Acquire:       return "acquire";
      case StepKind::Deliver:       return "deliver";
      case StepKind::Drop:          return "drop";
      case StepKind::Timer:         return "timer";
      case StepKind::Release:       return "release";
      case StepKind::FireWake:      return "firewake";
      case StepKind::FireWakeRetry: return "wakeretry";
      default:                      return "?";
    }
}

const char *
propertyName(Property p)
{
    switch (p) {
      case Property::None:        return "none";
      case Property::Mutex:       return "mutex";
      case Property::Deadlock:    return "deadlock";
      case Property::LostWakeup:  return "lost-wakeup";
      case Property::RtrMonotone: return "rtr-monotone";
      case Property::Arbitration: return "arbitration";
      case Property::Overtaking:  return "overtaking";
      default:                    return "?";
    }
}

Property
propertyFromName(const std::string &name)
{
    static const Property all[] = {
        Property::Mutex,       Property::Deadlock,
        Property::LostWakeup,  Property::RtrMonotone,
        Property::Arbitration, Property::Overtaking,
    };
    for (Property p : all)
        if (name == propertyName(p))
            return p;
    return Property::None;
}

std::string
VerifyConfig::describe() const
{
    std::ostringstream os;
    os << "t" << threads << "-a" << acquisitions << "-b"
       << spinBudget << (strictArb ? "-strict" : "-free");
    if (bug != BugKind::None)
        os << "-" << bugName(bug);
    return os.str();
}

bool
homeBound(proto::MsgKind k)
{
    switch (k) {
      case proto::MsgKind::LockTry:
      case proto::MsgKind::LockRelease:
      case proto::MsgKind::FutexWait:
      case proto::MsgKind::FutexWake:
        return true;
      default:
        return false;
    }
}

std::uint64_t
msgRank(const OcorConfig &ocor, const Msg &m)
{
    PriorityClass cls = PriorityClass::Normal;
    switch (m.kind) {
      case proto::MsgKind::LockTry:
        cls = PriorityClass::LockTry;
        break;
      case proto::MsgKind::LockRelease:
        cls = PriorityClass::LockRelease;
        break;
      case proto::MsgKind::FutexWait:
      case proto::MsgKind::FutexWake:
      case proto::MsgKind::WakeNotify:
        cls = PriorityClass::Wakeup;
        break;
      default:
        break;
    }
    return priorityRank(ocor, makePriority(ocor, cls, m.rtr, m.prog));
}

std::string
ScheduleStep::describe() const
{
    std::ostringstream os;
    os << stepKindName(kind);
    if (tid != invalidThread)
        os << " t" << tid;
    if (kind == StepKind::Deliver || kind == StepKind::Drop)
        os << " " << proto::msgKindName(msg);
    if (budgetExhausted)
        os << " budget-out";
    if (rtr)
        os << " rtr=" << rtr;
    return os.str();
}

// --- canonical encoding ---------------------------------------------

namespace
{

void
put8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

bool
msgLess(const Msg &a, const Msg &b)
{
    if (a.kind != b.kind)
        return a.kind < b.kind;
    if (a.tid != b.tid)
        return a.tid < b.tid;
    if (a.rtr != b.rtr)
        return a.rtr < b.rtr;
    if (a.prog != b.prog)
        return a.prog < b.prog;
    return a.seq < b.seq;
}

} // namespace

std::string
WorldState::encode() const
{
    std::string out;
    out.reserve(16 + threads.size() * 10 + msgs.size() * 4);
    for (const ThreadModel &t : threads) {
        put8(out, static_cast<std::uint8_t>(
                      (t.cs.active ? 1 : 0) |
                      (t.cs.holding ? 2 : 0) |
                      (t.cs.tryInFlight ? 4 : 0) |
                      (t.cs.everSlept ? 8 : 0) |
                      (t.wakePending ? 16 : 0)));
        put8(out, static_cast<std::uint8_t>(t.cs.phase));
        put8(out, static_cast<std::uint8_t>(t.cs.timer));
        put8(out, static_cast<std::uint8_t>(t.acqsLeft));
        put8(out, static_cast<std::uint8_t>(t.budgetLeft));
        put8(out, static_cast<std::uint8_t>(t.lastRtr));
        put8(out, static_cast<std::uint8_t>(t.prog));
        put8(out, static_cast<std::uint8_t>(t.overtaken));
    }
    put8(out, home.held ? 1 : 0);
    put8(out, home.holder == invalidThread
                  ? 0xFF
                  : static_cast<std::uint8_t>(home.holder));
    // Wait-queue order is FIFO-significant: encode in order.
    put8(out, static_cast<std::uint8_t>(home.waitQueue.size()));
    for (const auto &[tid, node] : home.waitQueue)
        put8(out, static_cast<std::uint8_t>(tid));
    // Poller order only affects the emission order of invalidations,
    // which land in the unordered message set anyway: sort so
    // semantically equal states merge.
    {
        std::vector<ThreadId> ps;
        for (const auto &[tid, node] : home.pollers)
            ps.push_back(tid);
        std::sort(ps.begin(), ps.end());
        put8(out, static_cast<std::uint8_t>(ps.size()));
        for (ThreadId tid : ps)
            put8(out, static_cast<std::uint8_t>(tid));
    }
    put8(out, wakeRetryPending ? 1 : 0);
    {
        std::vector<Msg> ms = msgs;
        std::sort(ms.begin(), ms.end(), msgLess);
        put8(out, static_cast<std::uint8_t>(ms.size()));
        for (const Msg &m : ms) {
            put8(out, static_cast<std::uint8_t>(m.kind));
            put8(out, static_cast<std::uint8_t>(m.tid));
            put8(out, static_cast<std::uint8_t>(m.rtr));
            put8(out, static_cast<std::uint8_t>(m.prog));
            put8(out, static_cast<std::uint8_t>(m.seq));
        }
    }
    return out;
}

namespace
{

/** @p s with thread identities renamed through @p pi (the model's
 * abstract node i is thread i, so node fields rename too). */
WorldState
permuteThreads(const WorldState &s, const std::vector<ThreadId> &pi)
{
    WorldState r = s;
    for (std::size_t t = 0; t < s.threads.size(); ++t)
        r.threads[pi[t]] = s.threads[t];
    if (s.home.holder != invalidThread)
        r.home.holder = pi[s.home.holder];
    for (auto &[tid, node] : r.home.waitQueue) {
        tid = pi[tid];
        node = static_cast<NodeId>(tid);
    }
    for (auto &[tid, node] : r.home.pollers) {
        tid = pi[tid];
        node = static_cast<NodeId>(tid);
    }
    for (Msg &m : r.msgs)
        if (m.tid != invalidThread)
            m.tid = pi[m.tid];
    return r;
}

} // namespace

std::string
canonicalKey(const VerifyConfig &cfg, const WorldState &s)
{
    std::vector<ThreadId> pi(s.threads.size());
    for (std::size_t t = 0; t < pi.size(); ++t)
        pi[t] = static_cast<ThreadId>(t);

    std::string best = s.encode();
    while (std::next_permutation(pi.begin(), pi.end())) {
        // ForceHold seeds thread 0 asymmetrically: only renamings
        // that fix it preserve behaviour.
        if (cfg.bug == BugKind::ForceHold && pi[0] != 0)
            continue;
        std::string key = permuteThreads(s, pi).encode();
        if (key < best)
            best = std::move(key);
    }
    return best;
}

// --- initial state --------------------------------------------------

WorldState
initialState(const VerifyConfig &cfg)
{
    WorldState s;
    s.threads.resize(cfg.threads);
    for (ThreadModel &t : s.threads)
        t.acqsLeft = cfg.acquisitions;
    if (cfg.bug == BugKind::ForceHold) {
        // Client 0 believes it owns the lock the home never granted
        // (the QSpinlock::testForceHold hook): any legitimate grant
        // to another client now breaks mutual exclusion.
        s.threads[0].cs.holding = true;
        s.threads[0].acqsLeft = 0;
    }
    return s;
}

// --- transition enumeration -----------------------------------------

namespace
{

/** Distinct in-flight messages (the set may hold duplicates). */
std::vector<Msg>
distinctMsgs(const std::vector<Msg> &msgs)
{
    std::vector<Msg> out;
    for (const Msg &m : msgs)
        if (std::find(out.begin(), out.end(), m) == out.end())
            out.push_back(m);
    return out;
}

/**
 * True when @p m is the oldest in-flight home-bound message on its
 * sender's channel. The thread->home channel is FIFO (see Msg::seq):
 * only channel heads are deliverable and only they compete at the
 * home's arbitration point.
 */
bool
channelHead(const std::vector<Msg> &msgs, const Msg &m)
{
    for (const Msg &o : msgs)
        if (homeBound(o.kind) && o.tid == m.tid && o.seq < m.seq)
            return false;
    return true;
}

/** Push a home-bound message, stamping its channel position. */
void
pushHomeBound(WorldState &s, Msg m)
{
    unsigned maxSeq = 0;
    for (const Msg &o : s.msgs)
        if (homeBound(o.kind) && o.tid == m.tid)
            maxSeq = std::max(maxSeq, o.seq);
    m.seq = maxSeq + 1;
    s.msgs.push_back(m);
}

} // namespace

std::vector<ScheduleStep>
enabledSteps(const VerifyConfig &cfg, const WorldState &s)
{
    std::vector<ScheduleStep> steps;

    for (ThreadId t = 0; t < s.threads.size(); ++t) {
        const ThreadModel &tm = s.threads[t];
        if (!tm.cs.active && !tm.cs.holding && tm.acqsLeft > 0 &&
            tm.cs.phase == proto::ClientPhase::Idle) {
            ScheduleStep st;
            st.kind = StepKind::Acquire;
            st.tid = t;
            steps.push_back(st);
        }
        if (tm.cs.holding) {
            ScheduleStep st;
            st.kind = StepKind::Release;
            st.tid = t;
            steps.push_back(st);
        }
        if (tm.cs.timer != proto::ClientTimer::None) {
            if (tm.cs.timer == proto::ClientTimer::Retry) {
                // Real time decides whether the budget expired by
                // this fire: enumerate both outcomes (spending a
                // retry requires budget left, so the space is
                // bounded).
                if (tm.budgetLeft > 0) {
                    ScheduleStep st;
                    st.kind = StepKind::Timer;
                    st.tid = t;
                    st.budgetExhausted = false;
                    steps.push_back(st);
                }
                ScheduleStep st;
                st.kind = StepKind::Timer;
                st.tid = t;
                st.budgetExhausted = true;
                steps.push_back(st);
            } else {
                ScheduleStep st;
                st.kind = StepKind::Timer;
                st.tid = t;
                steps.push_back(st);
            }
        }
        if (tm.wakePending) {
            ScheduleStep st;
            st.kind = StepKind::FireWake;
            st.tid = t;
            steps.push_back(st);
        }
    }

    if (s.wakeRetryPending) {
        ScheduleStep st;
        st.kind = StepKind::FireWakeRetry;
        steps.push_back(st);
    }

    // Message deliveries. Home-bound delivery order is where the NoC
    // arbitration lives: free mode delivers any message next;
    // strict mode models an ideal OCOR NoC where the highest
    // Table-1 rank always wins the race to the home (ArbInvert
    // inverts that choice, seeding an arbitration violation).
    std::vector<Msg> distinct = distinctMsgs(s.msgs);
    std::vector<Msg> homeMsgs;
    for (const Msg &m : distinct)
        if (homeBound(m.kind) && channelHead(s.msgs, m))
            homeMsgs.push_back(m);

    bool ranksDiffer = false;
    std::uint64_t bestRank = 0, worstRank = 0;
    if (!homeMsgs.empty()) {
        bestRank = worstRank = msgRank(cfg.ocor, homeMsgs[0]);
        for (const Msg &m : homeMsgs) {
            std::uint64_t r = msgRank(cfg.ocor, m);
            bestRank = std::max(bestRank, r);
            worstRank = std::min(worstRank, r);
        }
        ranksDiffer = bestRank != worstRank;
    }

    for (const Msg &m : distinct) {
        if (homeBound(m.kind)) {
            if (!channelHead(s.msgs, m))
                continue; // FIFO: a later send waits for the head
            std::uint64_t r = msgRank(cfg.ocor, m);
            if (cfg.strictArb) {
                bool eligible = cfg.bug == BugKind::ArbInvert
                    ? (!ranksDiffer || r == worstRank)
                    : r == bestRank;
                if (!eligible)
                    continue;
            }
            ScheduleStep st;
            st.kind = StepKind::Deliver;
            st.tid = m.tid;
            st.msg = m.kind;
            st.rtr = m.rtr;
            st.prog = m.prog;
            if (cfg.strictArb) {
                for (const Msg &rival : homeMsgs)
                    if (!(rival == m))
                        st.rivals.push_back(rival);
            }
            steps.push_back(st);
            continue;
        }

        if (m.kind == proto::MsgKind::LockFail) {
            const ThreadModel &tm = s.threads[m.tid];
            // The fail's arrival time against the budget deadline is
            // a real-time race: enumerate both outcomes.
            if (tm.budgetLeft > 0) {
                ScheduleStep st;
                st.kind = StepKind::Deliver;
                st.tid = m.tid;
                st.msg = m.kind;
                st.rtr = m.rtr;
                st.prog = m.prog;
                st.budgetExhausted = false;
                steps.push_back(st);
            }
            ScheduleStep st;
            st.kind = StepKind::Deliver;
            st.tid = m.tid;
            st.msg = m.kind;
            st.rtr = m.rtr;
            st.prog = m.prog;
            st.budgetExhausted = true;
            steps.push_back(st);
            continue;
        }

        ScheduleStep st;
        st.kind = StepKind::Deliver;
        st.tid = m.tid;
        st.msg = m.kind;
        st.rtr = m.rtr;
        st.prog = m.prog;
        steps.push_back(st);

        if (m.kind == proto::MsgKind::WakeNotify &&
            cfg.bug == BugKind::LostWake) {
            ScheduleStep drop;
            drop.kind = StepKind::Drop;
            drop.tid = m.tid;
            drop.msg = m.kind;
            drop.rtr = m.rtr;
            drop.prog = m.prog;
            steps.push_back(drop);
        }
    }

    return steps;
}

// --- step application -----------------------------------------------

namespace
{

/** Remove one in-flight instance matching the step's message. */
void
removeMsg(WorldState &s, const ScheduleStep &step)
{
    Msg key;
    key.kind = step.msg;
    key.tid = step.tid;
    key.rtr = step.rtr;
    key.prog = step.prog;
    auto it = std::find(s.msgs.begin(), s.msgs.end(), key);
    if (it == s.msgs.end())
        ocor_panic("verify: step delivers a message not in flight "
                   "(%s)", step.describe().c_str());
    s.msgs.erase(it);
}

/** Stamp the RTR of an outgoing LockTry and push it in flight. */
void
sendTry(const VerifyConfig &cfg, WorldState &s, ThreadId t,
        bool firstTry, ScheduleStep &step, StepOutcome &out)
{
    ThreadModel &tm = s.threads[t];
    unsigned rtr = std::max(tm.budgetLeft, 1u);
    if (!firstTry && cfg.bug == BugKind::RtrRaise)
        rtr = tm.lastRtr + 2; // seeded defect: RTR rises per retry

    if (tm.lastRtr > 0 && rtr > tm.lastRtr &&
        out.violated == Property::None) {
        out.violated = Property::RtrMonotone;
        std::ostringstream os;
        os << "thread " << t << " stamped RTR " << rtr
           << " after RTR " << tm.lastRtr
           << " within one attempt";
        out.detail = os.str();
    }

    tm.lastRtr = rtr;
    // A Deliver step's rtr/prog identify the *delivered* message
    // (LockFreeNotify here); only originating steps record the
    // stamp of the try they emit.
    if (step.kind != StepKind::Deliver) {
        step.rtr = rtr;
        step.prog = tm.prog;
    }

    Msg m;
    m.kind = proto::MsgKind::LockTry;
    m.tid = t;
    m.rtr = rtr;
    m.prog = tm.prog;
    pushHomeBound(s, m);
}

/** Grant bookkeeping: overtaking counters for the losers. */
void
noteGrantTo(const VerifyConfig &cfg, WorldState &s, ThreadId winner,
            StepOutcome &out)
{
    for (ThreadId u = 0; u < s.threads.size(); ++u) {
        if (u == winner || !s.threads[u].cs.active)
            continue;
        ThreadModel &tm = s.threads[u];
        ++tm.overtaken;
        if (tm.overtaken > cfg.effectiveOvertakeBound() &&
            out.violated == Property::None) {
            out.violated = Property::Overtaking;
            std::ostringstream os;
            os << "thread " << u << " overtaken "
               << tm.overtaken << " times (bound "
               << cfg.effectiveOvertakeBound() << ")";
            out.detail = os.str();
        }
    }
}

/** Client event corresponding to a delivered client-bound kind. */
proto::ClientEvent
clientEventFor(proto::MsgKind k)
{
    switch (k) {
      case proto::MsgKind::LockGrant:
        return proto::ClientEvent::MsgLockGrant;
      case proto::MsgKind::LockFail:
        return proto::ClientEvent::MsgLockFail;
      case proto::MsgKind::LockFreeNotify:
        return proto::ClientEvent::MsgLockFreeNotify;
      case proto::MsgKind::WakeNotify:
        return proto::ClientEvent::MsgWakeNotify;
      default:
        ocor_panic("verify: %s is not client-bound",
                   proto::msgKindName(k));
    }
}

/** Map clientStep actions onto abstract world effects. */
void
applyClientResult(const VerifyConfig &cfg, WorldState &s, ThreadId t,
                  const proto::ClientResult &res, ScheduleStep &step,
                  StepOutcome &out)
{
    ThreadModel &tm = s.threads[t];
    switch (res.action) {
      case proto::ClientAction::SendTry:
        sendTry(cfg, s, t, step.kind == StepKind::Acquire, step, out);
        break;

      case proto::ClientAction::RegisterWait: {
        Msg m;
        m.kind = proto::MsgKind::FutexWait;
        m.tid = t;
        m.prog = tm.prog;
        pushHomeBound(s, m);
        break;
      }

      case proto::ClientAction::EnterCs:
        if (tm.acqsLeft > 0)
            --tm.acqsLeft;
        tm.overtaken = 0;
        break;

      case proto::ClientAction::ReturnOrphan: {
        Msg m;
        m.kind = proto::MsgKind::LockRelease;
        m.tid = t;
        m.prog = tm.prog;
        pushHomeBound(s, m);
        break;
      }

      case proto::ClientAction::SendRelease: {
        Msg m;
        m.kind = proto::MsgKind::LockRelease;
        m.tid = t;
        m.prog = tm.prog;
        pushHomeBound(s, m);
        ++tm.prog;
        tm.wakePending = true;
        break;
      }

      case proto::ClientAction::None:
      case proto::ClientAction::ArmRetryTimer:
      case proto::ClientAction::BeginSleepPrep:
      case proto::ClientAction::StartWaking:
      case proto::ClientAction::AbsorbDuplicate:
        break; // pure-state / bookkeeping-only effects
    }
}

} // namespace

StepOutcome
applyStep(const VerifyConfig &cfg, WorldState &s, ScheduleStep &step)
{
    StepOutcome out;

    switch (step.kind) {
      case StepKind::Acquire: {
        ThreadModel &tm = s.threads[step.tid];
        tm.budgetLeft = cfg.spinBudget;
        tm.lastRtr = 0;
        tm.overtaken = 0;
        proto::ClientResult res = proto::clientStep(
            tm.cs, proto::ClientEvent::Acquire, {});
        applyClientResult(cfg, s, step.tid, res, step, out);
        break;
      }

      case StepKind::Release: {
        ThreadModel &tm = s.threads[step.tid];
        step.prog = tm.prog;
        proto::ClientResult res = proto::clientStep(
            tm.cs, proto::ClientEvent::Release, {});
        applyClientResult(cfg, s, step.tid, res, step, out);
        break;
      }

      case StepKind::Timer: {
        ThreadModel &tm = s.threads[step.tid];
        if (!step.budgetExhausted &&
            tm.cs.timer == proto::ClientTimer::Retry) {
            // Spending a retry burns one unit of the bounded budget.
            if (tm.budgetLeft == 0)
                ocor_panic("verify: retry with no budget left");
            --tm.budgetLeft;
        }
        proto::ClientInputs in;
        in.budgetExhausted = step.budgetExhausted;
        proto::ClientResult res = proto::clientStep(
            tm.cs, proto::ClientEvent::TimerFire, in);
        applyClientResult(cfg, s, step.tid, res, step, out);
        break;
      }

      case StepKind::FireWake: {
        ThreadModel &tm = s.threads[step.tid];
        if (!tm.wakePending)
            ocor_panic("verify: firewake without pending wake");
        tm.wakePending = false;
        Msg m;
        m.kind = proto::MsgKind::FutexWake;
        m.tid = step.tid;
        m.prog = tm.prog;
        pushHomeBound(s, m);
        break;
      }

      case StepKind::FireWakeRetry: {
        if (!s.wakeRetryPending)
            ocor_panic("verify: wakeretry without pending token");
        s.wakeRetryPending = false;
        Msg m;
        m.kind = proto::MsgKind::FutexWake;
        m.tid = invalidThread; // issued by the home itself
        pushHomeBound(s, m);
        break;
      }

      case StepKind::Drop:
        removeMsg(s, step);
        break;

      case StepKind::Deliver: {
        removeMsg(s, step);
        if (homeBound(step.msg)) {
            // Strict arbitration conformance: the delivered message
            // must outrank every competing home-bound rival.
            for (const Msg &rival : step.rivals) {
                if (msgRank(cfg.ocor, rival) >
                        msgRank(cfg.ocor,
                                Msg{step.msg, step.tid, step.rtr,
                                    step.prog}) &&
                    out.violated == Property::None) {
                    out.violated = Property::Arbitration;
                    std::ostringstream os;
                    os << proto::msgKindName(step.msg) << " from t"
                       << step.tid << " (rtr " << step.rtr
                       << ") beat higher-rank "
                       << proto::msgKindName(rival.kind) << " from t"
                       << rival.tid << " (rtr " << rival.rtr << ")";
                    out.detail = os.str();
                }
            }

            proto::HomeResult res = proto::homeStep(
                s.home, step.msg, step.tid,
                static_cast<NodeId>(step.tid),
                /*rewakeEnabled=*/false);

            switch (res.outcome) {
              case proto::HomeOutcome::Granted:
              case proto::HomeOutcome::ImmediateWake:
                noteGrantTo(cfg, s, step.tid, out);
                break;
              case proto::HomeOutcome::Woken:
                noteGrantTo(cfg, s, res.sends.front().thread, out);
                break;
              default:
                break;
            }
            if (res.scheduleWakeRetry)
                s.wakeRetryPending = true;

            for (const proto::HomeSend &snd : res.sends) {
                Msg m;
                m.kind = snd.kind;
                m.tid = snd.thread;
                if (snd.kind == proto::MsgKind::LockGrant ||
                    snd.kind == proto::MsgKind::LockFail ||
                    snd.kind == proto::MsgKind::WakeNotify) {
                    // Responses inherit the request's stamp (the
                    // real home copies pkt->priority).
                    m.rtr = step.rtr;
                    m.prog = step.prog;
                }
                s.msgs.push_back(m);
            }
        } else {
            ThreadModel &tm = s.threads[step.tid];
            proto::ClientInputs in;
            in.sameLock = true; // single modelled lock
            in.budgetExhausted = step.budgetExhausted;
            proto::ClientResult res = proto::clientStep(
                tm.cs, clientEventFor(step.msg), in);
            applyClientResult(cfg, s, step.tid, res, step, out);
        }
        break;
      }
    }

    return out;
}

StepOutcome
checkState(const VerifyConfig &cfg, const WorldState &s,
           bool terminal)
{
    (void)cfg;
    StepOutcome out;

    // Mutual exclusion: at most one client may hold / occupy the CS.
    std::vector<ThreadId> holders;
    for (ThreadId t = 0; t < s.threads.size(); ++t)
        if (s.threads[t].cs.holding)
            holders.push_back(t);
    if (holders.size() > 1) {
        out.violated = Property::Mutex;
        std::ostringstream os;
        os << "threads";
        for (ThreadId t : holders)
            os << " t" << t;
        os << " hold the lock simultaneously";
        out.detail = os.str();
        return out;
    }

    if (!terminal)
        return out;

    bool allDone = true;
    bool anySleeping = false;
    for (const ThreadModel &t : s.threads) {
        if (t.cs.active || t.cs.holding || t.acqsLeft > 0)
            allDone = false;
        if (t.cs.phase == proto::ClientPhase::Sleeping)
            anySleeping = true;
    }
    if (allDone)
        return out;

    out.violated =
        anySleeping ? Property::LostWakeup : Property::Deadlock;
    std::ostringstream os;
    os << "stuck state:";
    for (ThreadId t = 0; t < s.threads.size(); ++t) {
        const ThreadModel &tm = s.threads[t];
        if (tm.cs.active || tm.cs.holding || tm.acqsLeft > 0)
            os << " t" << t << "(phase "
               << static_cast<unsigned>(tm.cs.phase) << ", "
               << tm.acqsLeft << " acqs left)";
    }
    out.detail = os.str();
    return out;
}

} // namespace verify
} // namespace ocor
