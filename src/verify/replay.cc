#include "verify/replay.hh"

#include <algorithm>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "check/check_config.hh"
#include "check/checker_registry.hh"
#include "common/trace.hh"
#include "core/priority.hh"
#include "mem/address_map.hh"
#include "noc/packet.hh"
#include "noc/routing.hh"
#include "os/lock_manager.hh"
#include "os/params.hh"
#include "os/pcb.hh"
#include "os/qspinlock.hh"

namespace ocor
{
namespace verify
{

CheckId
expectedChecker(Property p)
{
    switch (p) {
      case Property::Mutex:       return CheckId::Mutex;
      case Property::LostWakeup:  return CheckId::Wakeup;
      case Property::RtrMonotone: return CheckId::Rtr;
      case Property::Arbitration: return CheckId::Arbitration;
      default:                    return CheckId::NumChecks;
    }
}

bool
replayThroughModel(const Counterexample &ce, std::string &error)
{
    WorldState s = initialState(ce.cfg);
    Property hit = Property::None;
    std::string detail;

    StepOutcome init = checkState(ce.cfg, s, false);
    hit = init.violated;

    for (std::size_t i = 0;
         i < ce.schedule.size() && hit == Property::None; ++i) {
        ScheduleStep step = ce.schedule[i];

        // The step must actually be enabled: a counterexample that
        // the model itself cannot execute is corrupt.
        std::vector<ScheduleStep> enabled =
            enabledSteps(ce.cfg, s);
        bool found = false;
        for (const ScheduleStep &e : enabled) {
            if (e.kind == step.kind && e.tid == step.tid &&
                e.msg == step.msg &&
                e.budgetExhausted == step.budgetExhausted &&
                (step.kind != StepKind::Deliver ||
                 (e.rtr == step.rtr && e.prog == step.prog))) {
                step.rivals = e.rivals;
                found = true;
                break;
            }
        }
        if (!found) {
            error = "step " + std::to_string(i) + " (" +
                step.describe() + ") is not enabled in the model";
            return false;
        }

        StepOutcome so = applyStep(ce.cfg, s, step);
        if (so.violated == Property::None)
            so = checkState(ce.cfg, s, false);
        hit = so.violated;
        detail = so.detail;
    }

    if (hit == Property::None) {
        StepOutcome term =
            checkState(ce.cfg, s, enabledSteps(ce.cfg, s).empty());
        hit = term.violated;
        detail = term.detail;
    }

    if (ce.violated == Property::None) {
        if (hit == Property::None)
            return true;
        error = "clean schedule violated " +
            std::string(propertyName(hit)) + ": " + detail;
        return false;
    }

    if (hit != ce.violated) {
        error = "schedule reproduces '" +
            std::string(propertyName(hit)) + "', file claims '" +
            propertyName(ce.violated) + "'";
        return false;
    }
    return true;
}

namespace
{

MsgType
msgTypeFor(proto::MsgKind k)
{
    switch (k) {
      case proto::MsgKind::LockTry:        return MsgType::LockTry;
      case proto::MsgKind::LockGrant:      return MsgType::LockGrant;
      case proto::MsgKind::LockFail:       return MsgType::LockFail;
      case proto::MsgKind::LockFreeNotify:
          return MsgType::LockFreeNotify;
      case proto::MsgKind::LockRelease:
          return MsgType::LockRelease;
      case proto::MsgKind::FutexWait:      return MsgType::FutexWait;
      case proto::MsgKind::FutexWake:      return MsgType::FutexWake;
      default:                             return MsgType::WakeNotify;
    }
}

PriorityClass
classFor(proto::MsgKind k)
{
    switch (k) {
      case proto::MsgKind::LockTry:
        return PriorityClass::LockTry;
      case proto::MsgKind::LockRelease:
        return PriorityClass::LockRelease;
      default:
        return PriorityClass::Wakeup;
    }
}

/** The real-component replay world. */
struct Harness
{
    const Counterexample &ce;
    MeshShape mesh{2, 2};
    AddressMap amap;
    OcorConfig ocor;
    OsParams os;
    Addr lockAddr = 0;
    NodeId homeNode = 0;

    TraceConfig traceCfg;
    std::unique_ptr<Tracer> tracer;
    std::unique_ptr<CheckerRegistry> registry;

    std::vector<std::unique_ptr<Pcb>> pcbs;
    std::vector<std::unique_ptr<QSpinlock>> clients;
    std::unique_ptr<LockManager> home;

    /** Captured packets still in flight. */
    std::vector<PacketPtr> pool;

    std::vector<Cycle> acquireAt; ///< spin-budget anchor per thread
    Cycle now = 0;

    ReplayResult result;
    std::ostream *log = nullptr;

    explicit Harness(const Counterexample &c)
        : ce(c), amap(mesh, 128)
    {
        ocor = c.cfg.ocor;
        ocor.enabled = true;

        // The home lives on node 3 so client nodes 0..2 stay
        // distinct from it on the 2x2 mesh (a 4th client shares
        // node 3 with the home, which is harmless: packets still
        // flow through the captured pool).
        homeNode = 3;
        lockAddr = static_cast<Addr>(homeNode) * 128;

        CheckConfig cc;
        cc.checks = checkBit(CheckId::Mutex) |
            checkBit(CheckId::Arbitration) | checkBit(CheckId::Rtr) |
            checkBit(CheckId::Wakeup);
        registry = std::make_unique<CheckerRegistry>(cc, ocor, 4);
        registry->setViolationHandler(
            [this](const CheckViolation &v) {
                result.violations.push_back(v);
            });

        traceCfg.categories = traceCatBit(TraceCat::Lock);
        traceCfg.capacity = 4096;
        tracer = std::make_unique<Tracer>(traceCfg);
        registry->attachTracer(tracer.get());

        auto capture = [this](const PacketPtr &pkt, Cycle) {
            pool.push_back(pkt);
        };

        for (ThreadId t = 0; t < ce.cfg.threads; ++t) {
            auto pcb = std::make_unique<Pcb>();
            pcb->tid = t;
            pcb->node = static_cast<NodeId>(t % mesh.numNodes());
            auto qs = std::make_unique<QSpinlock>(
                *pcb, ocor, os, amap, capture);
            qs->setTracer(tracer.get());
            qs->setChecker(registry.get());
            pcbs.push_back(std::move(pcb));
            clients.push_back(std::move(qs));
        }
        acquireAt.assign(ce.cfg.threads, 0);

        home = std::make_unique<LockManager>(homeNode, os, capture);
        home->setTracer(tracer.get());
        home->setChecker(registry.get());

        if (ce.cfg.bug == BugKind::ForceHold)
            clients[0]->testForceHold(lockAddr);
    }

    Cycle
    sleepDeadline(ThreadId t) const
    {
        return acquireAt[t] +
            static_cast<Cycle>(ocor.maxSpinCount) * os.retryInterval;
    }

    void
    note(const std::string &what)
    {
        if (log)
            *log << "  [cycle " << now << "] " << what << "\n";
    }

    /** Take one captured packet matching the step, or null. */
    PacketPtr
    takeFromPool(proto::MsgKind kind, ThreadId tid)
    {
        MsgType mt = msgTypeFor(kind);
        for (auto it = pool.begin(); it != pool.end(); ++it) {
            if ((*it)->type != mt)
                continue;
            // The home's wake-retry FutexWake carries the home's
            // own identity; the model labels it invalidThread.
            if (tid != invalidThread && (*it)->thread != tid)
                continue;
            PacketPtr p = *it;
            pool.erase(it);
            return p;
        }
        return nullptr;
    }

    /** End-of-cycle walk feeding the MutexChecker a HolderView. */
    void
    holderWalk()
    {
        std::vector<HolderView> view(clients.size());
        for (ThreadId t = 0; t < clients.size(); ++t)
            view[t] = {clients[t]->holding(),
                       pcbs[t]->state == ThreadState::InCS,
                       clients[t]->currentLock()};
        registry->onHolderWalk(view, now);
    }

    /** Hook-level arbitration event for a rival-carrying deliver. */
    void
    arbEvent(const ScheduleStep &st)
    {
        std::vector<PacketPtr> keepAlive;
        std::vector<const Packet *> cands;
        auto build = [&](proto::MsgKind k, ThreadId tid, unsigned rtr,
                         std::uint64_t prog) {
            auto p = makePacket(msgTypeFor(k),
                                static_cast<NodeId>(
                                    tid == invalidThread
                                        ? homeNode
                                        : tid % mesh.numNodes()),
                                homeNode, lockAddr);
            p->thread = tid;
            p->priority =
                makePriority(ocor, classFor(k), rtr, prog);
            keepAlive.push_back(p);
            cands.push_back(p.get());
        };
        build(st.msg, st.tid, st.rtr, st.prog);
        for (const Msg &rival : st.rivals)
            build(rival.kind, rival.tid, rival.rtr, rival.prog);
        registry->onArbGrant(homeNode, "model", cands, 0, now);
    }

    bool runStep(const ScheduleStep &st, std::size_t index);
    void run();
};

bool
Harness::runStep(const ScheduleStep &st, std::size_t index)
{
    auto fail = [&](const std::string &why) {
        result.error = "step " + std::to_string(index) + " (" +
            st.describe() + "): " + why;
        return false;
    };

    ++now;
    switch (st.kind) {
      case StepKind::Acquire:
        if (st.tid >= clients.size())
            return fail("no such thread");
        acquireAt[st.tid] = now;
        clients[st.tid]->acquire(lockAddr, now, nullptr);
        note("t" + std::to_string(st.tid) + " acquires");
        break;

      case StepKind::Release:
        if (st.tid >= clients.size())
            return fail("no such thread");
        if (!clients[st.tid]->holding())
            return fail("thread does not hold the lock");
        clients[st.tid]->release(now);
        note("t" + std::to_string(st.tid) + " releases");
        break;

      case StepKind::Timer: {
        if (st.tid >= clients.size())
            return fail("no such thread");
        QSpinlock &qs = *clients[st.tid];
        if (st.budgetExhausted)
            now = std::max(now, sleepDeadline(st.tid) + 1);
        Cycle due = qs.nextWake();
        if (due == neverCycle)
            return fail("no timer armed");
        now = std::max(now, due);
        qs.tick(now);
        note("t" + std::to_string(st.tid) + " timer fires");
        break;
      }

      case StepKind::FireWake: {
        if (st.tid >= clients.size())
            return fail("no such thread");
        QSpinlock &qs = *clients[st.tid];
        Cycle due = qs.nextWake();
        if (due == neverCycle)
            return fail("no deferred FUTEX_WAKE armed");
        now = std::max(now, due);
        qs.tick(now);
        note("t" + std::to_string(st.tid) + " fires FUTEX_WAKE");
        break;
      }

      case StepKind::FireWakeRetry: {
        Cycle due = home->nextWake();
        if (due == neverCycle)
            return fail("home has no wake-retry armed");
        now = std::max(now, due);
        home->tick(now);
        note("home wake-retry fires");
        break;
      }

      case StepKind::Drop: {
        PacketPtr p = takeFromPool(st.msg, st.tid);
        if (!p)
            return fail("message not in flight");
        note(std::string("dropped ") + msgTypeName(p->type));
        break;
      }

      case StepKind::Deliver: {
        if (!st.rivals.empty())
            arbEvent(st);
        if (st.budgetExhausted && st.tid < clients.size())
            now = std::max(now, sleepDeadline(st.tid) + 1);
        PacketPtr p = takeFromPool(st.msg, st.tid);
        if (!p)
            return fail("message not in flight");
        if (homeBound(st.msg)) {
            home->handle(p, now);
            now += os.homeLatency;
            home->tick(now);
        } else {
            if (st.tid >= clients.size())
                return fail("no such thread");
            clients[st.tid]->handle(p, now);
        }
        note(std::string("delivered ") + msgTypeName(p->type));
        break;
      }
    }

    holderWalk();
    return true;
}

void
Harness::run()
{
    holderWalk(); // the seeded initial state may already violate

    for (std::size_t i = 0; i < ce.schedule.size(); ++i)
        if (!runStep(ce.schedule[i], i)) {
            std::ostringstream diag;
            registry->dumpDiagnostics(diag);
            result.diagnostics = diag.str();
            return;
        }

    registry->finalize(now);

    std::ostringstream diag;
    registry->dumpDiagnostics(diag);
    result.diagnostics = diag.str();
    result.ok = true;
}

/** RTR stamps replay at hook level: correct hardware cannot emit a
 * rising RTR, so the schedule's recorded stamps go straight to the
 * runtime RtrChecker. */
ReplayResult
replayRtrStamps(const Counterexample &ce, std::ostream *log)
{
    ReplayResult result;

    CheckConfig cc;
    cc.checks = checkBit(CheckId::Rtr);
    OcorConfig ocor = ce.cfg.ocor;
    ocor.enabled = true;
    CheckerRegistry registry(cc, ocor, 4);
    registry.setViolationHandler([&](const CheckViolation &v) {
        result.violations.push_back(v);
    });

    Cycle now = 0;
    for (const ScheduleStep &st : ce.schedule) {
        ++now;
        if (st.kind == StepKind::Acquire)
            registry.onAcquireStart(st.tid, now);
        if (st.rtr > 0 &&
            (st.kind == StepKind::Acquire ||
             st.kind == StepKind::Timer)) {
            registry.onLockTry(st.tid, st.rtr, now);
            if (log)
                *log << "  [cycle " << now << "] t" << st.tid
                     << " stamps rtr=" << st.rtr << "\n";
        }
    }

    std::ostringstream diag;
    registry.dumpDiagnostics(diag);
    result.diagnostics = diag.str();
    result.ok = true;
    return result;
}

} // namespace

ReplayResult
replay(const Counterexample &ce, std::ostream *log)
{
    if (ce.cfg.threads == 0 || ce.cfg.threads > 8) {
        ReplayResult r;
        r.error = "implausible thread count";
        return r;
    }

    if (ce.cfg.bug == BugKind::RtrRaise)
        return replayRtrStamps(ce, log);

    Harness h(ce);
    h.log = log;
    h.run();
    return h.result;
}

} // namespace verify
} // namespace ocor
