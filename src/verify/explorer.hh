/**
 * @file
 * Bounded explicit-state exploration of the protocol model
 * (DESIGN.md §15).
 *
 * Breadth-first search over the abstract transition system with
 * canonical state hashing: BFS guarantees the first violation found
 * has a *minimal* schedule, which keeps counterexamples humanly
 * readable and replay cheap. Visited-set keys are the full canonical
 * encodings (not just hashes), so a hash collision can never hide a
 * state — soundness is not traded for memory.
 */

#ifndef OCOR_VERIFY_EXPLORER_HH
#define OCOR_VERIFY_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verify/model.hh"

namespace ocor
{
namespace verify
{

/** Exploration statistics (reported by every run). */
struct ExploreStats
{
    std::uint64_t states = 0;      ///< distinct states reached
    std::uint64_t transitions = 0; ///< steps applied
    unsigned maxDepth = 0;         ///< longest schedule examined
};

/** Outcome of one bounded exploration. */
struct ExploreResult
{
    ExploreStats stats;

    Property violated = Property::None;
    std::string detail;

    /** Minimal schedule reaching the violation (empty when clean). */
    std::vector<ScheduleStep> schedule;

    /** True when the state cap stopped the search early — the run
     * is then a smoke test, not an exhaustive proof. */
    bool capped = false;

    bool clean() const { return violated == Property::None; }
};

/**
 * Exhaustively explore @p cfg from the initial state.
 *
 * @p maxStates bounds the visited set (0 = unlimited). The first
 * violation ends the search with its minimal schedule.
 */
ExploreResult explore(const VerifyConfig &cfg,
                      std::uint64_t maxStates = 0);

} // namespace verify
} // namespace ocor

#endif // OCOR_VERIFY_EXPLORER_HH
