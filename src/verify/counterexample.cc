#include "verify/counterexample.hh"

#include <istream>
#include <ostream>
#include <sstream>

namespace ocor
{
namespace verify
{

namespace
{

constexpr const char *kMagic = "ocor-verify-counterexample v1";

std::string
encodeRivals(const std::vector<Msg> &rivals)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < rivals.size(); ++i) {
        if (i)
            os << ",";
        const Msg &m = rivals[i];
        os << proto::msgKindName(m.kind) << ":" << m.tid << ":"
           << m.rtr << ":" << m.prog;
    }
    return os.str();
}

bool
decodeRivals(const std::string &text, std::vector<Msg> &rivals)
{
    std::istringstream is(text);
    std::string item;
    while (std::getline(is, item, ',')) {
        std::istringstream fields(item);
        std::string kind, tid, rtr, prog;
        if (!std::getline(fields, kind, ':') ||
            !std::getline(fields, tid, ':') ||
            !std::getline(fields, rtr, ':') ||
            !std::getline(fields, prog, ':'))
            return false;
        Msg m;
        m.kind = proto::msgKindFromName(kind.c_str());
        if (m.kind == proto::MsgKind::NumKinds)
            return false;
        m.tid = static_cast<ThreadId>(std::stoul(tid));
        m.rtr = static_cast<unsigned>(std::stoul(rtr));
        m.prog = std::stoull(prog);
        rivals.push_back(m);
    }
    return true;
}

/** Split "key=value" (returns false when '=' is missing). */
bool
splitKv(const std::string &tok, std::string &key, std::string &val)
{
    auto eq = tok.find('=');
    if (eq == std::string::npos)
        return false;
    key = tok.substr(0, eq);
    val = tok.substr(eq + 1);
    return true;
}

} // namespace

void
writeCounterexample(std::ostream &os, const Counterexample &ce)
{
    os << kMagic << "\n";
    os << "config threads=" << ce.cfg.threads
       << " acqs=" << ce.cfg.acquisitions
       << " budget=" << ce.cfg.spinBudget
       << " strictarb=" << (ce.cfg.strictArb ? 1 : 0)
       << " bug=" << bugName(ce.cfg.bug) << "\n";
    os << "property " << propertyName(ce.violated) << "\n";
    if (!ce.detail.empty())
        os << "detail " << ce.detail << "\n";
    for (const ScheduleStep &st : ce.schedule) {
        os << "step " << stepKindName(st.kind);
        if (st.kind == StepKind::Deliver || st.kind == StepKind::Drop)
            os << " kind=" << proto::msgKindName(st.msg);
        if (st.tid != invalidThread)
            os << " t=" << st.tid;
        if (st.budgetExhausted)
            os << " budget=1";
        if (st.rtr)
            os << " rtr=" << st.rtr;
        os << " prog=" << st.prog;
        if (!st.rivals.empty())
            os << " rivals=" << encodeRivals(st.rivals);
        os << "\n";
    }
    os << "end\n";
}

bool
readCounterexample(std::istream &is, Counterexample &ce,
                   std::string &error)
{
    std::string line;
    if (!std::getline(is, line) || line != kMagic) {
        error = "missing or unknown magic line";
        return false;
    }

    bool sawEnd = false;
    unsigned lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream toks(line);
        std::string word;
        toks >> word;

        if (word == "end") {
            sawEnd = true;
            break;
        }

        if (word == "detail") {
            std::getline(toks, ce.detail);
            if (!ce.detail.empty() && ce.detail[0] == ' ')
                ce.detail.erase(0, 1);
            continue;
        }

        if (word == "property") {
            std::string name;
            toks >> name;
            ce.violated = propertyFromName(name);
            if (ce.violated == Property::None && name != "none") {
                error = "line " + std::to_string(lineNo) +
                    ": unknown property '" + name + "'";
                return false;
            }
            continue;
        }

        if (word == "config") {
            std::string tok;
            while (toks >> tok) {
                std::string key, val;
                if (!splitKv(tok, key, val)) {
                    error = "line " + std::to_string(lineNo) +
                        ": bad config token '" + tok + "'";
                    return false;
                }
                if (key == "threads") {
                    ce.cfg.threads =
                        static_cast<unsigned>(std::stoul(val));
                } else if (key == "acqs") {
                    ce.cfg.acquisitions =
                        static_cast<unsigned>(std::stoul(val));
                } else if (key == "budget") {
                    ce.cfg.spinBudget =
                        static_cast<unsigned>(std::stoul(val));
                } else if (key == "strictarb") {
                    ce.cfg.strictArb = val == "1";
                } else if (key == "bug") {
                    ce.cfg.bug = bugFromName(val);
                    if (ce.cfg.bug == BugKind::NumBugs) {
                        error = "line " + std::to_string(lineNo) +
                            ": unknown bug '" + val + "'";
                        return false;
                    }
                } else {
                    error = "line " + std::to_string(lineNo) +
                        ": unknown config key '" + key + "'";
                    return false;
                }
            }
            continue;
        }

        if (word != "step") {
            error = "line " + std::to_string(lineNo) +
                ": unknown directive '" + word + "'";
            return false;
        }

        ScheduleStep st;
        std::string kindWord;
        toks >> kindWord;
        bool known = false;
        for (StepKind k :
             {StepKind::Acquire, StepKind::Deliver, StepKind::Drop,
              StepKind::Timer, StepKind::Release, StepKind::FireWake,
              StepKind::FireWakeRetry}) {
            if (kindWord == stepKindName(k)) {
                st.kind = k;
                known = true;
                break;
            }
        }
        if (!known) {
            error = "line " + std::to_string(lineNo) +
                ": unknown step kind '" + kindWord + "'";
            return false;
        }

        std::string tok;
        while (toks >> tok) {
            std::string key, val;
            if (!splitKv(tok, key, val)) {
                error = "line " + std::to_string(lineNo) +
                    ": bad step token '" + tok + "'";
                return false;
            }
            if (key == "kind") {
                st.msg = proto::msgKindFromName(val.c_str());
                if (st.msg == proto::MsgKind::NumKinds) {
                    error = "line " + std::to_string(lineNo) +
                        ": unknown message kind '" + val + "'";
                    return false;
                }
            } else if (key == "t") {
                st.tid = static_cast<ThreadId>(std::stoul(val));
            } else if (key == "budget") {
                st.budgetExhausted = val == "1";
            } else if (key == "rtr") {
                st.rtr = static_cast<unsigned>(std::stoul(val));
            } else if (key == "prog") {
                st.prog = std::stoull(val);
            } else if (key == "rivals") {
                if (!decodeRivals(val, st.rivals)) {
                    error = "line " + std::to_string(lineNo) +
                        ": bad rivals list";
                    return false;
                }
            } else {
                error = "line " + std::to_string(lineNo) +
                    ": unknown step key '" + key + "'";
                return false;
            }
        }
        ce.schedule.push_back(std::move(st));
    }

    if (!sawEnd) {
        error = "truncated file: no 'end' line";
        return false;
    }
    return true;
}

} // namespace verify
} // namespace ocor
