#include "mem/l1_cache.hh"

#include "common/log.hh"

namespace ocor
{

L1Cache::L1Cache(NodeId node, const AddressMap &amap,
                 const MemParams &params, SendFn send)
    : node_(node), amap_(amap), params_(params),
      send_(std::move(send)),
      array_(params.l1Sets, params.l1Ways, params.lineBytes)
{}

CoherState
L1Cache::lineState(Addr addr) const
{
    const CacheLine *l = array_.find(amap_.lineAddr(addr));
    return l ? l->state : CoherState::I;
}

bool
L1Cache::request(Addr addr, bool write, Cycle now, CompletionFn done)
{
    const Addr line = amap_.lineAddr(addr);
    ++useTick_;

    CacheLine *l = array_.find(line);
    if (l) {
        bool read_hit = !write && l->state != CoherState::I;
        bool write_hit = write && (l->state == CoherState::M ||
                                   l->state == CoherState::E);
        if (read_hit || write_hit) {
            if (write)
                l->state = CoherState::M; // silent E -> M upgrade
            array_.touch(l, useTick_);
            ++stats_.hits;
            delayed_.emplace_back(now + params_.l1Latency,
                                  std::move(done));
            return true;
        }
        if (write && (l->state == CoherState::S ||
                      l->state == CoherState::O)) {
            // Upgrade path: drop the stale copy and reissue as a
            // full GetM below.
            l->valid = false;
            l->state = CoherState::I;
        }
    }

    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        // Coalesce reads under any pending miss, and writes under a
        // pending GetM; a write under a pending GetS must retry.
        if (write && !it->second.wantWrite) {
            ++stats_.mshrRejects;
            return false;
        }
        it->second.waiters.push_back(std::move(done));
        return true;
    }

    if (mshrs_.size() >= params_.l1Mshrs) {
        ++stats_.mshrRejects;
        return false;
    }

    ++stats_.misses;
    Mshr &m = mshrs_[line];
    m.wantWrite = write;
    m.waiters.push_back(std::move(done));

    auto pkt = makePacket(write ? MsgType::GetM : MsgType::GetS,
                          node_, amap_.homeOf(line), line);
    pkt->requester = node_;
    send_(pkt, now);
    return true;
}

void
L1Cache::evictFor(Addr line, Cycle now)
{
    CacheLine *victim = array_.victimFor(line);
    if (!victim->valid)
        return;

    ++stats_.evictions;
    const Addr vline = victim->addr;
    switch (victim->state) {
      case CoherState::M:
      case CoherState::O: {
        auto wb = makePacket(MsgType::PutM, node_,
                             amap_.homeOf(vline), vline);
        send_(wb, now);
        ++stats_.writebacks;
        break;
      }
      case CoherState::E: {
        auto pe = makePacket(MsgType::PutE, node_,
                             amap_.homeOf(vline), vline);
        send_(pe, now);
        break;
      }
      default:
        break; // S: silent drop; the directory tolerates stale sharers
    }
    victim->valid = false;
    victim->state = CoherState::I;
}

void
L1Cache::fillLine(Addr line, CoherState state, Cycle now)
{
    evictFor(line, now);
    CacheLine *slot = array_.victimFor(line);
    array_.fill(slot, line, state, ++useTick_);
}

void
L1Cache::handle(const PacketPtr &pkt, Cycle now)
{
    const Addr line = amap_.lineAddr(pkt->addr);

    switch (pkt->type) {
      case MsgType::Data:
      case MsgType::DataExcl: {
        auto it = mshrs_.find(line);
        if (it == mshrs_.end()) {
            ocor_warn("L1 %u: unsolicited %s for %llx", node_,
                      msgTypeName(pkt->type),
                      static_cast<unsigned long long>(line));
            return;
        }
        CoherState st;
        if (pkt->type == MsgType::Data)
            st = CoherState::S;
        else
            st = it->second.wantWrite ? CoherState::M : CoherState::E;
        fillLine(line, st, now);
        auto waiters = std::move(it->second.waiters);
        mshrs_.erase(it);
        // Close the directory transaction: the home keeps the line
        // busy until this fill confirmation so later requests cannot
        // race ahead of the grant in the network.
        auto unb = makePacket(MsgType::Unblock, node_, pkt->src,
                              line);
        send_(unb, now);
        for (auto &w : waiters)
            w(now);
        break;
      }
      case MsgType::Inv: {
        ++stats_.invsReceived;
        if (CacheLine *l = array_.find(line)) {
            l->valid = false;
            l->state = CoherState::I;
        }
        auto ack = makePacket(MsgType::InvAck, node_, pkt->src, line);
        ack->aux = pkt->aux; // echo the transaction tag
        send_(ack, now);
        break;
      }
      case MsgType::Fetch: {
        ++stats_.fetchesReceived;
        auto resp = makePacket(MsgType::FetchResp, node_, pkt->src,
                               line);
        resp->aux = pkt->aux; // echo tag + invalidate flag
        CacheLine *l = array_.find(line);
        if (l && l->state != CoherState::I &&
            l->state != CoherState::S) {
            if (pkt->aux & 1) {  // invalidate (GetM at home)
                l->valid = false;
                l->state = CoherState::I;
            } else {             // downgrade (GetS at home)
                l->state = CoherState::O;
            }
        } else {
            resp->aux |= 2; // no data: raced with our own eviction
        }
        send_(resp, now);
        break;
      }
      case MsgType::WbAck:
        break; // writebacks are fire-and-forget in this model
      default:
        ocor_panic("L1 %u: unexpected message %s", node_,
                   msgTypeName(pkt->type));
    }
}

void
L1Cache::tick(Cycle now)
{
    while (!delayed_.empty() && delayed_.front().first <= now) {
        auto fn = std::move(delayed_.front().second);
        delayed_.pop_front();
        fn(now);
    }
}

} // namespace ocor
