/**
 * @file
 * Memory controller: fixed-latency DRAM behind a service queue.
 *
 * Eight controllers attach to the middle nodes of the top and bottom
 * mesh rows (Figure 3). The model is a single-channel FIFO: request
 * starts are spaced mcServiceInterval cycles apart and each access
 * completes dramLatency cycles after it starts; reads return an
 * 8-flit MemResp to the requesting L2 bank.
 */

#ifndef OCOR_MEM_MEM_CONTROLLER_HH
#define OCOR_MEM_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"
#include "mem/params.hh"
#include "noc/packet.hh"

namespace ocor
{

/** Memory-controller observability counters. */
struct McStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t queuePeak = 0;
};

/** One on-chip memory controller. */
class MemController
{
  public:
    MemController(NodeId node, const MemParams &params, SendFn send);

    /** MemRead / MemWrite addressed to this controller. */
    void handle(const PacketPtr &pkt, Cycle now);

    /** Advance: complete accesses whose latency elapsed. */
    void tick(Cycle now);

    bool idle() const { return inService_.empty(); }

    /** Earliest cycle tick() would do any work (neverCycle = none):
     * service start times are monotone (max(now, nextStart_)), so
     * completion cycles are FIFO-ordered. */
    Cycle nextWake() const
    {
        return inService_.empty() ? neverCycle
                                  : inService_.front().first;
    }

    const McStats &stats() const { return stats_; }

  private:
    NodeId node_;
    MemParams params_;
    SendFn send_;

    Cycle nextStart_ = 0;
    std::deque<std::pair<Cycle, PacketPtr>> inService_;

    McStats stats_;
};

} // namespace ocor

#endif // OCOR_MEM_MEM_CONTROLLER_HH
