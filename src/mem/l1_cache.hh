/**
 * @file
 * Private L1 cache with MSHRs, speaking the home-serialized MOESI
 * directory protocol over the NoC.
 *
 * The model is timing directed: tags and coherence states are exact,
 * data values are not simulated. Stable L1 states are MOESI; writes
 * to E upgrade silently to M; writes to S/O drop the local copy and
 * reissue as a full GetM (a small simplification that only adds data
 * traffic, see DESIGN.md).
 */

#ifndef OCOR_MEM_L1_CACHE_HH
#define OCOR_MEM_L1_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/cache_array.hh"
#include "mem/params.hh"
#include "noc/packet.hh"

namespace ocor
{

/** L1 observability counters. */
struct L1Stats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invsReceived = 0;
    std::uint64_t fetchesReceived = 0;
    std::uint64_t mshrRejects = 0;
};

/** One core's private L1 data cache. */
class L1Cache
{
  public:
    using CompletionFn = std::function<void(Cycle)>;

    L1Cache(NodeId node, const AddressMap &amap,
            const MemParams &params, SendFn send);

    /**
     * Issue a load (@p write false) or store (@p write true).
     *
     * @return true when accepted (hit or MSHR allocated); false when
     *         the request must be retried later (MSHR pressure or an
     *         incompatible outstanding miss on the same line).
     */
    bool request(Addr addr, bool write, Cycle now, CompletionFn done);

    /** Protocol traffic addressed to this L1. */
    void handle(const PacketPtr &pkt, Cycle now);

    /** Advance: release delayed hit completions. */
    void tick(Cycle now);

    bool idle() const { return mshrs_.empty() && delayed_.empty(); }

    /**
     * Earliest cycle tick() would do any work (neverCycle = none).
     * delayed_ is a FIFO of constant-latency completions, so its
     * front is the minimum. Outstanding MSHRs carry no timer — their
     * progress arrives as handle() traffic, not tick() work.
     */
    Cycle nextWake() const
    {
        return delayed_.empty() ? neverCycle : delayed_.front().first;
    }
    std::size_t outstanding() const { return mshrs_.size(); }
    const L1Stats &stats() const { return stats_; }

    /** White-box state inspection for tests. */
    CoherState lineState(Addr addr) const;

  private:
    struct Mshr
    {
        bool wantWrite = false;
        std::vector<CompletionFn> waiters;
    };

    void fillLine(Addr line, CoherState state, Cycle now);
    void evictFor(Addr line, Cycle now);

    NodeId node_;
    const AddressMap &amap_;
    MemParams params_;
    SendFn send_;

    CacheArray array_;
    std::map<Addr, Mshr> mshrs_;
    std::deque<std::pair<Cycle, CompletionFn>> delayed_;
    std::uint64_t useTick_ = 0;

    L1Stats stats_;
};

} // namespace ocor

#endif // OCOR_MEM_L1_CACHE_HH
