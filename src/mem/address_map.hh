/**
 * @file
 * Physical address interpretation: line granularity, home L2 bank
 * interleaving, and memory-controller placement.
 *
 * Per Section 3.1 / Table 2: 128 B cache blocks, one shared L2 bank
 * per node (address-interleaved), and eight memory controllers
 * attached to the middle four nodes of the top and bottom mesh rows
 * for architectural symmetry.
 */

#ifndef OCOR_MEM_ADDRESS_MAP_HH
#define OCOR_MEM_ADDRESS_MAP_HH

#include <vector>

#include "common/types.hh"
#include "noc/routing.hh"

namespace ocor
{

/** Address decomposition and home mapping for one system instance. */
class AddressMap
{
  public:
    AddressMap(const MeshShape &mesh, unsigned line_bytes = 128);

    unsigned lineBytes() const { return lineBytes_; }

    /** Align an address down to its cache line. */
    Addr lineAddr(Addr a) const { return a & ~Addr{lineBytes_ - 1}; }

    /** Line index used for interleaving. */
    Addr lineIndex(Addr a) const { return a / lineBytes_; }

    /** Home L2 bank (node) of an address. */
    NodeId homeOf(Addr a) const
    {
        return static_cast<NodeId>(lineIndex(a) % mesh_.numNodes());
    }

    /** Memory controller node serving an address. */
    NodeId mcOf(Addr a) const
    {
        return mcNodes_[lineIndex(a) / mesh_.numNodes()
                        % mcNodes_.size()];
    }

    /** All nodes that host a memory controller. */
    const std::vector<NodeId> &mcNodes() const { return mcNodes_; }

    const MeshShape &mesh() const { return mesh_; }

  private:
    MeshShape mesh_;
    unsigned lineBytes_;
    std::vector<NodeId> mcNodes_;
};

} // namespace ocor

#endif // OCOR_MEM_ADDRESS_MAP_HH
