#include "mem/mem_controller.hh"

#include <algorithm>

#include "common/log.hh"

namespace ocor
{

MemController::MemController(NodeId node, const MemParams &params,
                             SendFn send)
    : node_(node), params_(params), send_(std::move(send))
{}

void
MemController::handle(const PacketPtr &pkt, Cycle now)
{
    if (pkt->type != MsgType::MemRead && pkt->type != MsgType::MemWrite)
        ocor_panic("MC %u: unexpected message %s", node_,
                   msgTypeName(pkt->type));

    Cycle start = std::max(now, nextStart_);
    nextStart_ = start + params_.mcServiceInterval;
    inService_.emplace_back(start + params_.dramLatency, pkt);
    stats_.queuePeak = std::max<std::uint64_t>(stats_.queuePeak,
                                               inService_.size());
    if (pkt->type == MsgType::MemRead)
        ++stats_.reads;
    else
        ++stats_.writes;
}

void
MemController::tick(Cycle now)
{
    while (!inService_.empty() && inService_.front().first <= now) {
        PacketPtr req = inService_.front().second;
        inService_.pop_front();
        if (req->type == MsgType::MemRead) {
            auto resp = makePacket(MsgType::MemResp, node_, req->src,
                                   req->addr);
            send_(resp, now);
        }
        // Writes are absorbed.
    }
}

} // namespace ocor
