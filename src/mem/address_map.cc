#include "mem/address_map.hh"

#include "common/log.hh"

namespace ocor
{

AddressMap::AddressMap(const MeshShape &mesh, unsigned line_bytes)
    : mesh_(mesh), lineBytes_(line_bytes)
{
    if (lineBytes_ == 0 || (lineBytes_ & (lineBytes_ - 1)) != 0)
        ocor_fatal("AddressMap: lineBytes must be a power of two");

    // Middle nodes of the top and bottom rows (up to four per row,
    // centered), mirroring the paper's Figure 3 placement and scaling
    // down gracefully for small meshes.
    unsigned per_row = mesh_.width < 4 ? mesh_.width : 4;
    unsigned start = (mesh_.width - per_row) / 2;
    for (unsigned x = start; x < start + per_row; ++x)
        mcNodes_.push_back(mesh_.nodeAt(x, 0));
    if (mesh_.height > 1)
        for (unsigned x = start; x < start + per_row; ++x)
            mcNodes_.push_back(mesh_.nodeAt(x, mesh_.height - 1));
}

} // namespace ocor
