/**
 * @file
 * Set-associative tag/state array with LRU replacement.
 *
 * Shared by the private L1s and the L2 bank of each node. The
 * simulator is timing directed: the array tracks tags and coherence
 * state, not data values.
 */

#ifndef OCOR_MEM_CACHE_ARRAY_HH
#define OCOR_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ocor
{

/** MOESI stable states (used by L1; L2 uses Valid/Invalid only). */
enum class CoherState : std::uint8_t { I, S, E, O, M };

/** Name of a coherence state (tests/traces). */
const char *coherStateName(CoherState s);

/** One tag-array entry. */
struct CacheLine
{
    Addr addr = 0;           ///< full line address
    CoherState state = CoherState::I;
    std::uint64_t lastUse = 0;
    bool valid = false;
};

/** Tag array of sets x ways lines. */
class CacheArray
{
  public:
    CacheArray(unsigned sets, unsigned ways, unsigned line_bytes);

    /** Lookup; returns nullptr on miss. Does not update LRU. */
    CacheLine *find(Addr line_addr);
    const CacheLine *find(Addr line_addr) const;

    /**
     * Choose a victim way in the set of @p line_addr: an invalid way
     * if one exists, else the LRU way. Returns the slot; the caller
     * inspects *victim to handle writeback, then overwrites it.
     */
    CacheLine *victimFor(Addr line_addr);

    /** Install @p line_addr into @p slot with @p state. */
    void fill(CacheLine *slot, Addr line_addr, CoherState state,
              std::uint64_t use_tick);

    /** Mark an access for LRU purposes. */
    void touch(CacheLine *line, std::uint64_t use_tick);

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Number of valid lines (occupancy checks in tests). */
    unsigned validCount() const;

  private:
    unsigned setOf(Addr line_addr) const;

    unsigned sets_;
    unsigned ways_;
    unsigned lineBytes_;
    std::vector<CacheLine> lines_; ///< sets_ * ways_, row per set
};

} // namespace ocor

#endif // OCOR_MEM_CACHE_ARRAY_HH
