#include "mem/l2_directory.hh"

#include "common/log.hh"

namespace ocor
{

namespace
{
std::uint64_t
bitOf(NodeId n)
{
    return std::uint64_t{1} << n;
}
} // namespace

L2Directory::L2Directory(NodeId node, const AddressMap &amap,
                         const MemParams &params, SendFn send)
    : node_(node), amap_(amap), params_(params),
      send_(std::move(send)),
      l2_(params.l2Sets, params.l2Ways, params.lineBytes)
{}

NodeId
L2Directory::ownerOf(Addr addr) const
{
    auto it = dir_.find(amap_.lineAddr(addr));
    return it == dir_.end() ? invalidNode : it->second.owner;
}

std::uint64_t
L2Directory::sharersOf(Addr addr) const
{
    auto it = dir_.find(amap_.lineAddr(addr));
    return it == dir_.end() ? 0 : it->second.sharers;
}

bool
L2Directory::lineBusy(Addr addr) const
{
    auto it = dir_.find(amap_.lineAddr(addr));
    return it != dir_.end() && it->second.busy;
}

bool
L2Directory::idle() const
{
    if (!delayed_.empty())
        return false;
    for (const auto &[addr, e] : dir_)
        if (e.busy || !e.pending.empty())
            return false;
    return true;
}

void
L2Directory::handle(const PacketPtr &pkt, Cycle now)
{
    // Bank access latency before the controller sees the message.
    delayed_.emplace_back(now + params_.l2Latency, pkt);
}

void
L2Directory::tick(Cycle now)
{
    while (!delayed_.empty() && delayed_.front().first <= now) {
        PacketPtr pkt = delayed_.front().second;
        delayed_.pop_front();
        process(pkt, now);
    }
}

void
L2Directory::fillL2(Addr line, Cycle now)
{
    ++useTick_;
    if (CacheLine *l = l2_.find(line)) {
        l2_.touch(l, useTick_);
        return;
    }
    CacheLine *victim = l2_.victimFor(line);
    if (victim->valid) {
        const Addr vline = victim->addr;
        auto vit = dir_.find(vline);
        if (vit != dir_.end() && !vit->second.busy) {
            // Best-effort recall of the victim's cached copies; acks
            // are dropped as stale (txSeq bumped). Rare by design:
            // the banks are far larger than any workload footprint.
            auto &ve = vit->second;
            ++ve.txSeq;
            std::uint64_t targets = ve.sharers;
            if (ve.owner != invalidNode)
                targets |= bitOf(ve.owner);
            for (NodeId n = 0; targets != 0; ++n, targets >>= 1) {
                if (targets & 1) {
                    auto inv = makePacket(MsgType::Inv, node_, n,
                                          vline);
                    inv->aux = ve.txSeq << 8;
                    send_(inv, now);
                    ++stats_.invsSent;
                }
            }
            dir_.erase(vit);
            ++stats_.l2Evictions;
            auto wb = makePacket(MsgType::MemWrite, node_,
                                 amap_.mcOf(vline), vline);
            send_(wb, now);
            ++stats_.memWrites;
        } else if (vit != dir_.end()) {
            // The victim line is mid-transaction; drop only the L2
            // copy and keep the directory state (timing-directed
            // model, no data correctness impact).
            ++stats_.l2Evictions;
        }
    }
    l2_.fill(victim, line, CoherState::S, useTick_);
}

void
L2Directory::awaitUnblock(DirEntry &e, const PacketPtr &req)
{
    // The line stays busy until the requester confirms its fill;
    // this closes the window where a later Fetch/Inv could overtake
    // the in-flight grant.
    e.busy = true;
    e.req = req;
    e.waitingUnblock = true;
}

void
L2Directory::unbusyAndDrain(Addr line, Cycle now)
{
    auto it = dir_.find(line);
    if (it == dir_.end())
        return;
    DirEntry &e = it->second;
    e.busy = false;
    e.req.reset();
    e.waitingMem = false;
    e.waitingFetch = false;
    e.waitingUnblock = false;
    e.acksLeft = 0;
    while (!e.busy && !e.pending.empty()) {
        PacketPtr next = e.pending.front();
        e.pending.pop_front();
        process(next, now);
    }
}

void
L2Directory::grantM(DirEntry &e, Cycle now)
{
    const PacketPtr req = e.req;
    e.owner = req->src;
    e.sharers = 0;
    auto resp = makePacket(MsgType::DataExcl, node_, req->src,
                           req->addr);
    send_(resp, now);
    e.waitingFetch = false;
    e.acksLeft = 0;
    awaitUnblock(e, req);
}

void
L2Directory::finishGetS(DirEntry &e, bool owner_had_data, Cycle now)
{
    const PacketPtr req = e.req;
    fillL2(req->addr, now); // owner data (or stale copy) lands in L2
    if (!owner_had_data)
        e.owner = invalidNode;

    if (e.owner == invalidNode && e.sharers == 0) {
        e.owner = req->src;
        auto resp = makePacket(MsgType::DataExcl, node_, req->src,
                               req->addr);
        send_(resp, now);
    } else {
        e.sharers |= bitOf(req->src);
        auto resp = makePacket(MsgType::Data, node_, req->src,
                               req->addr);
        send_(resp, now);
    }
    awaitUnblock(e, req);
}

void
L2Directory::startRequest(DirEntry &e, const PacketPtr &pkt,
                          Cycle now)
{
    const Addr line = pkt->addr;

    // Miss in the bank with no on-chip owner: fetch from DRAM first.
    if (!l2_.find(line) && e.owner == invalidNode) {
        e.busy = true;
        e.req = pkt;
        e.waitingMem = true;
        auto rd = makePacket(MsgType::MemRead, node_,
                             amap_.mcOf(line), line);
        send_(rd, now);
        ++stats_.memReads;
        return;
    }

    if (pkt->type == MsgType::GetS) {
        ++stats_.getS;
        if (e.owner != invalidNode && e.owner != pkt->src) {
            e.busy = true;
            e.req = pkt;
            e.waitingFetch = true;
            ++e.txSeq;
            auto f = makePacket(MsgType::Fetch, node_, e.owner, line);
            f->aux = e.txSeq << 8; // downgrade-to-O fetch
            send_(f, now);
            ++stats_.fetchesSent;
            return;
        }
        if (e.owner == pkt->src) {
            // Requester believes it lost the line (in-flight PutE/M):
            // re-grant exclusivity.
            auto resp = makePacket(MsgType::DataExcl, node_, pkt->src,
                                   line);
            send_(resp, now);
        } else if (e.sharers == 0) {
            e.owner = pkt->src; // MOESI E grant
            auto resp = makePacket(MsgType::DataExcl, node_, pkt->src,
                                   line);
            send_(resp, now);
        } else {
            e.sharers |= bitOf(pkt->src);
            auto resp = makePacket(MsgType::Data, node_, pkt->src,
                                   line);
            send_(resp, now);
        }
        awaitUnblock(e, pkt);
        return;
    }

    if (pkt->type != MsgType::GetM)
        ocor_panic("L2 %u: startRequest on %s", node_,
                   msgTypeName(pkt->type));

    ++stats_.getM;
    ++e.txSeq;
    unsigned acks = 0;
    std::uint64_t sharers = e.sharers & ~bitOf(pkt->src);
    for (NodeId n = 0; sharers != 0; ++n, sharers >>= 1) {
        if (sharers & 1) {
            auto inv = makePacket(MsgType::Inv, node_, n, line);
            inv->aux = e.txSeq << 8;
            send_(inv, now);
            ++stats_.invsSent;
            ++acks;
        }
    }
    if (e.owner != invalidNode && e.owner != pkt->src) {
        auto f = makePacket(MsgType::Fetch, node_, e.owner, line);
        f->aux = (e.txSeq << 8) | 1; // invalidating fetch
        send_(f, now);
        ++stats_.fetchesSent;
        ++acks;
    }
    e.sharers = 0;

    e.busy = true;
    e.req = pkt;
    e.acksLeft = acks;
    if (acks == 0)
        grantM(e, now);
}

void
L2Directory::process(const PacketPtr &pkt, Cycle now)
{
    const Addr line = pkt->addr;
    DirEntry &e = dir_[line];

    switch (pkt->type) {
      case MsgType::GetS:
      case MsgType::GetM:
        if (e.busy) {
            e.pending.push_back(pkt);
            ++stats_.queuedRequests;
        } else {
            startRequest(e, pkt, now);
        }
        break;

      case MsgType::PutM:
      case MsgType::PutE:
        if (e.busy) {
            e.pending.push_back(pkt);
            ++stats_.queuedRequests;
            break;
        }
        if (e.owner == pkt->src)
            e.owner = invalidNode;
        if (pkt->type == MsgType::PutM)
            fillL2(line, now);
        break;

      case MsgType::InvAck:
        if (!e.busy || e.acksLeft == 0 ||
            (pkt->aux >> 8) != e.txSeq) {
            ++stats_.staleAcks;
            break;
        }
        if (--e.acksLeft == 0 && !e.waitingMem && !e.waitingFetch)
            grantM(e, now);
        break;

      case MsgType::FetchResp:
        if (!e.busy || (pkt->aux >> 8) != e.txSeq) {
            ++stats_.staleAcks;
            break;
        }
        if (pkt->aux & 1) { // invalidating fetch: part of a GetM
            if (e.acksLeft > 0 && --e.acksLeft == 0)
                grantM(e, now);
        } else {            // downgrading fetch: completes a GetS
            e.waitingFetch = false;
            finishGetS(e, (pkt->aux & 2) == 0, now);
        }
        break;

      case MsgType::Unblock: {
        if (!e.busy || !e.waitingUnblock) {
            ++stats_.staleAcks;
            break;
        }
        unbusyAndDrain(line, now);
        break;
      }

      case MsgType::MemResp: {
        fillL2(line, now);
        // dir_ may rehash inside fillL2 (victim erase); re-find.
        DirEntry &er = dir_[line];
        er.waitingMem = false;
        PacketPtr req = er.req;
        er.busy = false;
        er.req.reset();
        if (req)
            process(req, now);
        else
            unbusyAndDrain(line, now);
        break;
      }

      default:
        ocor_panic("L2 %u: unexpected message %s", node_,
                   msgTypeName(pkt->type));
    }
}

} // namespace ocor
