/**
 * @file
 * Memory-hierarchy parameters (Table 2 defaults).
 */

#ifndef OCOR_MEM_PARAMS_HH
#define OCOR_MEM_PARAMS_HH

namespace ocor
{

/** Cache / directory / DRAM configuration. */
struct MemParams
{
    // Private L1 per core: 32 KB, 4-way, 128 B lines, 2-cycle hit.
    unsigned l1Sets = 64;
    unsigned l1Ways = 4;
    unsigned l1Latency = 2;
    unsigned l1Mshrs = 32;

    // Shared L2 bank per node: 1 MB, 16-way, 128 B lines, 6 cycles.
    unsigned l2Sets = 512;
    unsigned l2Ways = 16;
    unsigned l2Latency = 6;

    // DRAM behind 8 memory controllers.
    unsigned dramLatency = 80;     ///< access latency, cycles
    unsigned mcServiceInterval = 8;///< min cycles between req starts

    unsigned lineBytes = 128;
};

} // namespace ocor

#endif // OCOR_MEM_PARAMS_HH
