/**
 * @file
 * Shared L2 bank with an integrated MOESI directory.
 *
 * The home bank of every line serializes all coherence activity for
 * it (one transaction in flight per line; later requests queue in a
 * per-line pending FIFO, exactly like the lock requests of Figure 4
 * serialize at the lock variable's home node). The directory is
 * home-centric: owners write data back through the home instead of
 * forwarding cache-to-cache, which only lengthens the (fully
 * simulated) message chains and never changes protocol outcomes.
 *
 * Invariants, enforced by tests:
 *  - at most one owner per line;
 *  - a line with an owner has no conflicting exclusive grant pending;
 *  - every transaction eventually unblocks its pending queue.
 */

#ifndef OCOR_MEM_L2_DIRECTORY_HH
#define OCOR_MEM_L2_DIRECTORY_HH

#include <cstdint>
#include <deque>
#include <map>

#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/cache_array.hh"
#include "mem/params.hh"
#include "noc/packet.hh"

namespace ocor
{

/** Directory/L2-bank observability counters. */
struct L2Stats
{
    std::uint64_t getS = 0;
    std::uint64_t getM = 0;
    std::uint64_t invsSent = 0;
    std::uint64_t fetchesSent = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t queuedRequests = 0;
    std::uint64_t staleAcks = 0;
    std::uint64_t l2Evictions = 0;
};

/** One node's shared L2 bank + directory controller. */
class L2Directory
{
  public:
    L2Directory(NodeId node, const AddressMap &amap,
                const MemParams &params, SendFn send);

    /** Coherence / memory traffic addressed to this bank. */
    void handle(const PacketPtr &pkt, Cycle now);

    /** Advance: process requests that finished the bank latency. */
    void tick(Cycle now);

    bool idle() const;

    /** Earliest cycle tick() would do any work (neverCycle = none):
     * delayed_ is a constant-latency FIFO, so its front is minimal.
     * Directory transactions advance via handle(), not tick(). */
    Cycle nextWake() const
    {
        return delayed_.empty() ? neverCycle : delayed_.front().first;
    }

    const L2Stats &stats() const { return stats_; }

    /** White-box inspection for tests. */
    NodeId ownerOf(Addr addr) const;
    std::uint64_t sharersOf(Addr addr) const;
    bool lineBusy(Addr addr) const;

  private:
    struct DirEntry
    {
        NodeId owner = invalidNode;
        std::uint64_t sharers = 0;   ///< bit per node
        bool busy = false;
        std::uint32_t txSeq = 0;     ///< tags Inv/Fetch of each tx
        PacketPtr req;               ///< request being served
        unsigned acksLeft = 0;
        bool waitingMem = false;
        bool waitingFetch = false;
        bool waitingUnblock = false;
        std::deque<PacketPtr> pending;
    };

    void process(const PacketPtr &pkt, Cycle now);
    void startRequest(DirEntry &e, const PacketPtr &pkt, Cycle now);
    void finishGetS(DirEntry &e, bool owner_had_data, Cycle now);
    void grantM(DirEntry &e, Cycle now);
    void awaitUnblock(DirEntry &e, const PacketPtr &req);
    void unbusyAndDrain(Addr line, Cycle now);
    void fillL2(Addr line, Cycle now);

    NodeId node_;
    const AddressMap &amap_;
    MemParams params_;
    SendFn send_;

    CacheArray l2_;
    std::map<Addr, DirEntry> dir_;
    std::deque<std::pair<Cycle, PacketPtr>> delayed_;
    std::uint64_t useTick_ = 0;

    L2Stats stats_;
};

} // namespace ocor

#endif // OCOR_MEM_L2_DIRECTORY_HH
