#include "mem/cache_array.hh"

#include "common/log.hh"

namespace ocor
{

const char *
coherStateName(CoherState s)
{
    switch (s) {
      case CoherState::I: return "I";
      case CoherState::S: return "S";
      case CoherState::E: return "E";
      case CoherState::O: return "O";
      case CoherState::M: return "M";
      default: return "?";
    }
}

CacheArray::CacheArray(unsigned sets, unsigned ways,
                       unsigned line_bytes)
    : sets_(sets), ways_(ways), lineBytes_(line_bytes),
      lines_(sets * ways)
{
    if (sets == 0 || (sets & (sets - 1)) != 0)
        ocor_fatal("CacheArray: sets must be a power of two");
    if (ways == 0)
        ocor_fatal("CacheArray: ways must be > 0");
}

unsigned
CacheArray::setOf(Addr line_addr) const
{
    return static_cast<unsigned>((line_addr / lineBytes_)
                                 & (sets_ - 1));
}

CacheLine *
CacheArray::find(Addr line_addr)
{
    unsigned s = setOf(line_addr);
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &l = lines_[s * ways_ + w];
        if (l.valid && l.addr == line_addr)
            return &l;
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->find(line_addr);
}

CacheLine *
CacheArray::victimFor(Addr line_addr)
{
    unsigned s = setOf(line_addr);
    CacheLine *lru = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &l = lines_[s * ways_ + w];
        if (!l.valid)
            return &l;
        if (!lru || l.lastUse < lru->lastUse)
            lru = &l;
    }
    return lru;
}

void
CacheArray::fill(CacheLine *slot, Addr line_addr, CoherState state,
                 std::uint64_t use_tick)
{
    slot->addr = line_addr;
    slot->state = state;
    slot->lastUse = use_tick;
    slot->valid = true;
}

void
CacheArray::touch(CacheLine *line, std::uint64_t use_tick)
{
    line->lastUse = use_tick;
}

unsigned
CacheArray::validCount() const
{
    unsigned n = 0;
    for (const auto &l : lines_)
        n += l.valid ? 1 : 0;
    return n;
}

} // namespace ocor
