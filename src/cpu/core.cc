#include "cpu/core.hh"

#include "common/log.hh"

namespace ocor
{

Core::Core(Pcb &pcb, L1Cache &l1, QSpinlock &qspin, Program program,
           const BgTrafficConfig &bg, std::uint64_t seed,
           Addr lock_region_base, unsigned line_bytes)
    : pcb_(pcb), l1_(l1), qspin_(qspin), program_(std::move(program)),
      bg_(bg), rng_(seed), lockRegionBase_(lock_region_base),
      lineBytes_(line_bytes)
{
    if (!program_.wellFormed())
        ocor_fatal("Core t%u: malformed program", pcb_.tid);
    nextBg_ = rng_.nextEventGap(bg_.rate);
}

Addr
Core::lockAddr(std::uint64_t lock_idx) const
{
    return lockRegionBase_ + lock_idx * lineBytes_;
}

void
Core::maybeIssueBackground(Cycle now)
{
    if (bg_.rate <= 0.0 || now < nextBg_)
        return;
    // The core only generates its application traffic while the
    // thread actually occupies it.
    if (pcb_.state != ThreadState::Running &&
        pcb_.state != ThreadState::InCS)
        return;

    nextBg_ = now + rng_.nextEventGap(bg_.rate);
    Addr line = bg_.poolBase
        + rng_.range(bg_.poolLines) * lineBytes_;
    bool write = rng_.chance(bg_.storeFraction);
    bool ok = l1_.request(line, write, now, [](Cycle) {});
    if (ok)
        ++stats_.bgAccesses;
    else
        ++stats_.bgRejected;
}

void
Core::step(Cycle now)
{
    if (waitingMem_ || waitingLock_)
        return;
    if (busyUntil_ > now)
        return;

    const Op &op = program_.ops[pc_];
    switch (op.type) {
      case OpType::Compute:
        busyUntil_ = now + op.arg;
        ++pc_;
        ++stats_.opsExecuted;
        break;

      case OpType::Lock:
        waitingLock_ = true;
        ++stats_.opsExecuted;
        qspin_.acquire(lockAddr(op.arg), now, [this](Cycle) {
            waitingLock_ = false;
            ++pc_;
        });
        break;

      case OpType::Unlock:
        qspin_.release(now);
        ++pc_;
        ++stats_.opsExecuted;
        break;

      case OpType::Load:
      case OpType::Store: {
        bool write = op.type == OpType::Store;
        waitingMem_ = true;
        bool ok = l1_.request(op.arg, write, now, [this](Cycle) {
            waitingMem_ = false;
            ++pc_;
        });
        if (!ok) {
            // MSHR pressure: retry next cycle.
            waitingMem_ = false;
            ++stats_.fgRetries;
            memRetry_ = true;
            return;
        }
        if (write)
            ++stats_.fgStores;
        else
            ++stats_.fgLoads;
        ++stats_.opsExecuted;
        break;
      }

      case OpType::End:
        pcb_.state = ThreadState::Finished;
        finishCycle_ = now;
        ++stats_.opsExecuted;
        break;
    }
}

void
Core::tick(Cycle now)
{
    if (pcb_.state == ThreadState::Finished)
        return;
    maybeIssueBackground(now);
    memRetry_ = false;
    step(now);
}

} // namespace ocor
