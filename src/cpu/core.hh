/**
 * @file
 * Core model: interprets a thread's program, drives the private L1
 * for data accesses and the queue spinlock for critical sections,
 * and generates the thread's background memory traffic.
 *
 * One core runs one thread (the paper's configuration). Background
 * traffic models the application's concurrent non-critical memory
 * activity: fire-and-forget loads/stores to a shared address pool at
 * a configurable per-cycle rate, issued only while the thread is
 * actually running on the core (Running / InCS states).
 */

#ifndef OCOR_CPU_CORE_HH
#define OCOR_CPU_CORE_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "mem/l1_cache.hh"
#include "os/pcb.hh"
#include "os/qspinlock.hh"
#include "workload/program.hh"

namespace ocor
{

/** Background-traffic knobs (the network-utilization axis). */
struct BgTrafficConfig
{
    /** Accesses issued per cycle (mean of a Bernoulli process). */
    double rate = 0.0;

    /** Fraction of background accesses that are stores. */
    double storeFraction = 0.3;

    /** Base of the shared background address pool. */
    Addr poolBase = 0x4000'0000;

    /** Pool size in cache lines. */
    std::uint64_t poolLines = 1 << 14;
};

/** Core observability counters. */
struct CoreStats
{
    std::uint64_t opsExecuted = 0;
    std::uint64_t fgLoads = 0;
    std::uint64_t fgStores = 0;
    std::uint64_t bgAccesses = 0;
    std::uint64_t bgRejected = 0;
    std::uint64_t fgRetries = 0;
};

/** One processor node: core + thread context. */
class Core
{
  public:
    Core(Pcb &pcb, L1Cache &l1, QSpinlock &qspin, Program program,
         const BgTrafficConfig &bg, std::uint64_t seed,
         Addr lock_region_base, unsigned line_bytes);

    /** Advance one cycle. */
    void tick(Cycle now);

    bool finished() const
    {
        return pcb_.state == ThreadState::Finished;
    }

    /**
     * Earliest cycle tick() would do any work; may be in the past
     * (overdue = due immediately; the event core clamps). Mirrors
     * tick()/step()'s guards: background traffic fires only while
     * the thread is on the core (Running / InCS — a foreground
     * memory stall keeps the state Running, so bg still fires), and
     * step() runs only when not waiting and past busyUntil_. While
     * waiting, progress arrives via L1/qspinlock callbacks, which
     * run in earlier tick slots of the same cycle.
     */
    Cycle
    nextWake() const
    {
        if (pcb_.state == ThreadState::Finished)
            return neverCycle;
        Cycle w = neverCycle;
        if (bg_.rate > 0 && (pcb_.state == ThreadState::Running ||
                             pcb_.state == ThreadState::InCS))
            w = nextBg_;
        if (!waitingMem_ && !waitingLock_ && busyUntil_ < w)
            w = busyUntil_;
        return w;
    }
    Cycle finishCycle() const { return finishCycle_; }
    const CoreStats &stats() const { return stats_; }
    const Program &program() const { return program_; }

    /** Lock index -> lock word address (one line per lock). */
    Addr lockAddr(std::uint64_t lock_idx) const;

  private:
    void maybeIssueBackground(Cycle now);
    void step(Cycle now);

    Pcb &pcb_;
    L1Cache &l1_;
    QSpinlock &qspin_;
    Program program_;
    BgTrafficConfig bg_;
    Rng rng_;
    Addr lockRegionBase_;
    unsigned lineBytes_;

    std::size_t pc_ = 0;
    Cycle busyUntil_ = 0;    ///< compute op completion
    bool waitingMem_ = false;
    bool waitingLock_ = false;
    bool memRetry_ = false;  ///< foreground access was rejected
    Cycle nextBg_ = 0;
    Cycle finishCycle_ = neverCycle;

    CoreStats stats_;
};

} // namespace ocor

#endif // OCOR_CPU_CORE_HH
