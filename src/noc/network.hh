/**
 * @file
 * The mesh network: routers, NIs and links wired per Section 3.1.
 */

#ifndef OCOR_NOC_NETWORK_HH
#define OCOR_NOC_NETWORK_HH

#include <memory>
#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/ocor_config.hh"
#include "noc/link.hh"
#include "noc/network_interface.hh"
#include "noc/params.hh"
#include "noc/router.hh"
#include "noc/routing.hh"

namespace ocor
{

class Tracer;
class CheckerRegistry;

/** Network-wide aggregate statistics. */
struct NetworkStats
{
    std::uint64_t packetsDelivered = 0;
    std::uint64_t lockPacketsDelivered = 0;
    SampleStat packetLatency;      ///< inject -> eject, all packets
    SampleStat lockPacketLatency;  ///< lock-protocol packets only
    SampleStat dataPacketLatency;  ///< everything else

    /** Packets delivered by the hybrid-fidelity analytic fast path
     * instead of per-flit mesh transport (0 under exact fidelity). */
    std::uint64_t fastpathPackets = 0;
    /** Latency distributions feeding p50/p95/p99 reporting. Bucket
     * width 2 cycles x 256 buckets covers [0, 512); longer transits
     * land in the explicit overflow bucket. */
    Histogram packetLatencyHist{2.0, 256};
    Histogram lockPacketLatencyHist{2.0, 256};

    // --- hybrid-window diagnostics (all zero in exact fidelity).
    //     windowCycles counts open->close spans (finalizeWindows
    //     folds in a still-open tail); the three close-cause
    //     counters sum to windowsClosed. --------------------------
    std::uint64_t windowsOpened = 0;
    std::uint64_t windowsClosed = 0;
    std::uint64_t windowCycles = 0;
    std::uint64_t windowCloseWaiter = 0; ///< a lock waiter appeared
    std::uint64_t windowCloseLock = 0;   ///< lock packet with 0 waiters
    std::uint64_t windowCloseLoad = 0;   ///< population over capacity
};

/**
 * Why Network::nextWake() wants the next cycle (profiling only):
 * the first matching clause of nextWake()'s scan, so the wake
 * profiler can say *what* keeps the network group hot.
 */
enum class NetWakeReason : std::uint8_t
{
    RouterBusy, ///< some router still buffers flits
    LinkBusy,   ///< some link carries a flit or credit
    Fastpath,   ///< pending analytic delivery due
    NiQueue,    ///< an NI-local queue has timed work
    Idle,       ///< nothing due (wake was external/stale)
    NumReasons
};

constexpr std::size_t kNumNetWakeReasons =
    static_cast<std::size_t>(NetWakeReason::NumReasons);

/** Stable reason name (stats keys). */
const char *netWakeReasonName(NetWakeReason r);

/** A width x height mesh of 2-stage VC routers with one NI per node. */
class Network
{
  public:
    /**
     * @p fault may be null (no fault modeling, zero overhead). When
     * given, every link is registered with a stable id (construction
     * order: per node, the east out/in pair then the south out/in
     * pair, then NI<->router pairs per node) and the NIs are wired
     * with CRC/retransmission support plus an out-of-band ack channel
     * back to the source NI.
     */
    Network(const MeshShape &mesh, const NocParams &params,
            const OcorConfig &ocor, FaultInjector *fault = nullptr);

    /** Node-side packet sink; wraps the NI deliver hook. */
    void setNodeSink(NodeId node, NetworkInterface::DeliverFn fn);

    /** Stamp-and-send convenience used by all node logic. */
    void send(const PacketPtr &pkt, Cycle now);

    void tick(Cycle now);

    /**
     * Event-core variant of tick(): same router-then-NI walk order,
     * but each router and NI is entered through its own gated
     * tickEvent so fully idle nodes cost a handful of compares
     * instead of full allocation-stage scans. Bit-identical to
     * tick() by construction (every elided stage is a provable
     * no-op).
     */
    void tickEvent(Cycle now);

    /**
     * Earliest future cycle tick() could do any work, seen from
     * cycle @p now (neverCycle = fully drained). While any router
     * buffers a flit or any link carries a flit/credit the answer is
     * conservatively now + 1 (pipeline stages advance every cycle);
     * otherwise only NI-local queues can create work, and their
     * per-NI minima apply. Never returns a cycle <= now.
     */
    Cycle nextWake(Cycle now) const;

    /** All buffers and links empty (drain check). */
    bool idle() const;

    /** First matching clause of nextWake()'s scan at cycle @p now
     * (wake-profiler attribution; same walk order as nextWake). */
    NetWakeReason wakeReason(Cycle now) const;

    /** Fold a still-open hybrid window's cycles into the stats at
     * end of run (no close cause is charged: the run ended, the
     * window did not close). Idempotent. */
    void finalizeWindows(Cycle now);

    /**
     * Arm the hybrid-fidelity fast path. @p waiters points at the
     * System's live count of threads waiting on any lock word; while
     * it reads zero, send() delivers non-lock-protocol packets with
     * the analytic latency model instead of injecting flits. The
     * moment a waiter appears, new sends fall back to exact per-flit
     * transport (in-flight analytic deliveries still complete on
     * their scheduled cycle). Null (the default) disables the fast
     * path entirely — the exact-fidelity configuration.
     */
    void setFastpath(const unsigned *waiters)
    {
        fastWaiters_ = waiters;
    }

    /**
     * Hybrid-fidelity latency estimate for @p pkt: NI entry/exit,
     * per-hop pipeline + link traversal, body-flit serialization and
     * a load-proportional contention term derived from the number of
     * concurrently in-flight fast-path packets. Deterministic given
     * the simulation state. Exposed for tests and calibration.
     */
    Cycle analyticLatency(const Packet &pkt) const;

    /** The load-independent part of analyticLatency(): NI entry/exit,
     * per-hop pipeline + link traversal and body-flit serialization
     * (1 for same-node loopback). Also the re-transit budget used
     * when pending analytic deliveries are reified into the mesh. */
    Cycle uncontendedLatency(const Packet &pkt) const;

    NetworkInterface &ni(NodeId n) { return *nis_[n]; }
    Router &router(NodeId n) { return *routers_[n]; }
    const MeshShape &mesh() const { return mesh_; }
    const NocParams &params() const { return params_; }
    const NetworkStats &stats() const { return stats_; }

    /** Sum of injected flits over all NIs (utilization metric). */
    std::uint64_t totalFlitsInjected() const;
    std::uint64_t totalPacketsInjected() const;
    std::uint64_t totalLockPacketsInjected() const;

    /** Hand every router and NI (and the window diagnostics) the
     * event tracer (null = off). */
    void setTracer(Tracer *t);

    /** Hand every router, NI and link the invariant checker. */
    void setChecker(CheckerRegistry *c);

    /** Link fan-out for interval telemetry. */
    unsigned numLinks() const
    {
        return static_cast<unsigned>(links_.size());
    }
    const Link &link(unsigned i) const { return *links_[i]; }

  private:
    void fastSend(const PacketPtr &pkt, Cycle now);
    void drainFastpath(Cycle now);

    MeshShape mesh_;
    NocParams params_;
    const OcorConfig &ocor_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<Link>> links_;

    /** In-flight analytic deliveries, ordered by (arrival, push
     * sequence) for deterministic same-cycle delivery order. */
    struct FastEntry
    {
        Cycle at;
        std::uint64_t seq;
        PacketPtr pkt;
        bool operator>(const FastEntry &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };
    std::priority_queue<FastEntry, std::vector<FastEntry>,
                        std::greater<>>
        fastQueue_;
    std::uint64_t fastSeq_ = 0;

    /** Packets handed to send() since construction; sendsTotal_ -
     * packetsDelivered is the outstanding population feeding the
     * analytic contention term (counted send-side so loopback and
     * NI-queued packets are included — see analyticLatency()). */
    std::uint64_t sendsTotal_ = 0;

    /** Hybrid window oracle (null = exact fidelity). */
    const unsigned *fastWaiters_ = nullptr;

    /** Window state for the close-transition congestion correction
     * in send(): the cycle the last open window closed, and whether
     * the most recent send saw an open window. */
    bool windowOpen_ = false;
    Cycle windowClosedAt_ = neverCycle;
    Cycle windowOpenedAt_ = neverCycle;

    Tracer *trace_ = nullptr; ///< window open/close events only

    NetworkStats stats_;
};

} // namespace ocor

#endif // OCOR_NOC_NETWORK_HH
