/**
 * @file
 * The mesh network: routers, NIs and links wired per Section 3.1.
 */

#ifndef OCOR_NOC_NETWORK_HH
#define OCOR_NOC_NETWORK_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/ocor_config.hh"
#include "noc/link.hh"
#include "noc/network_interface.hh"
#include "noc/params.hh"
#include "noc/router.hh"
#include "noc/routing.hh"

namespace ocor
{

class Tracer;
class CheckerRegistry;

/** Network-wide aggregate statistics. */
struct NetworkStats
{
    std::uint64_t packetsDelivered = 0;
    std::uint64_t lockPacketsDelivered = 0;
    SampleStat packetLatency;      ///< inject -> eject, all packets
    SampleStat lockPacketLatency;  ///< lock-protocol packets only
    SampleStat dataPacketLatency;  ///< everything else
    /** Latency distributions feeding p50/p95/p99 reporting. Bucket
     * width 2 cycles x 256 buckets covers [0, 512); longer transits
     * land in the explicit overflow bucket. */
    Histogram packetLatencyHist{2.0, 256};
    Histogram lockPacketLatencyHist{2.0, 256};
};

/** A width x height mesh of 2-stage VC routers with one NI per node. */
class Network
{
  public:
    /**
     * @p fault may be null (no fault modeling, zero overhead). When
     * given, every link is registered with a stable id (construction
     * order: per node, the east out/in pair then the south out/in
     * pair, then NI<->router pairs per node) and the NIs are wired
     * with CRC/retransmission support plus an out-of-band ack channel
     * back to the source NI.
     */
    Network(const MeshShape &mesh, const NocParams &params,
            const OcorConfig &ocor, FaultInjector *fault = nullptr);

    /** Node-side packet sink; wraps the NI deliver hook. */
    void setNodeSink(NodeId node, NetworkInterface::DeliverFn fn);

    /** Stamp-and-send convenience used by all node logic. */
    void send(const PacketPtr &pkt, Cycle now);

    void tick(Cycle now);

    /** All buffers and links empty (drain check). */
    bool idle() const;

    NetworkInterface &ni(NodeId n) { return *nis_[n]; }
    Router &router(NodeId n) { return *routers_[n]; }
    const MeshShape &mesh() const { return mesh_; }
    const NocParams &params() const { return params_; }
    const NetworkStats &stats() const { return stats_; }

    /** Sum of injected flits over all NIs (utilization metric). */
    std::uint64_t totalFlitsInjected() const;
    std::uint64_t totalPacketsInjected() const;
    std::uint64_t totalLockPacketsInjected() const;

    /** Hand every router and NI the event tracer (null = off). */
    void setTracer(Tracer *t);

    /** Hand every router, NI and link the invariant checker. */
    void setChecker(CheckerRegistry *c);

    /** Link fan-out for interval telemetry. */
    unsigned numLinks() const
    {
        return static_cast<unsigned>(links_.size());
    }
    const Link &link(unsigned i) const { return *links_[i]; }

  private:
    MeshShape mesh_;
    NocParams params_;
    const OcorConfig &ocor_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<Link>> links_;

    NetworkStats stats_;
};

} // namespace ocor

#endif // OCOR_NOC_NETWORK_HH
