/**
 * @file
 * Router output unit: downstream VC bookkeeping and credit counters.
 */

#ifndef OCOR_NOC_OUTPUT_UNIT_HH
#define OCOR_NOC_OUTPUT_UNIT_HH

#include <vector>

#include "common/types.hh"

namespace ocor
{

/** Upstream view of one downstream virtual channel. */
struct OutVcState
{
    /** Free buffer slots in the downstream VC FIFO. */
    unsigned credits = 0;

    /** A packet currently owns this VC (head sent, tail not yet). */
    bool allocated = false;
};

/** One router output port. */
struct OutputUnit
{
    OutputUnit(unsigned num_vcs, unsigned vc_depth)
        : vcs(num_vcs)
    {
        for (auto &vc : vcs)
            vc.credits = vc_depth;
    }

    std::vector<OutVcState> vcs;

    /** Index of a free (unallocated) VC, or -1. */
    int
    findFreeVc() const
    {
        for (std::size_t i = 0; i < vcs.size(); ++i)
            if (!vcs[i].allocated)
                return static_cast<int>(i);
        return -1;
    }
};

} // namespace ocor

#endif // OCOR_NOC_OUTPUT_UNIT_HH
