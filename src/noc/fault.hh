/**
 * @file
 * Deterministic NoC fault injection and the recovery bookkeeping
 * shared by every layer of the stack.
 *
 * A FaultConfig describes a transient-fault model for the mesh links:
 * whole packets dropped in flight, individual flits bit-flipped
 * (detected by the CRC the source NI stamps into the header), and
 * delay jitter that stalls flits on the wire. All decisions draw from
 * one seeded Rng owned by the FaultInjector, so a run is exactly
 * reproducible from (config, seed) — faults included.
 *
 * Recovery spans three layers:
 *  - NI: per-outstanding-packet timeout triggers sender-side
 *    retransmission with bounded retries and exponential backoff; the
 *    retransmitted copy preserves the OCOR priority header. Delivery
 *    is confirmed over an out-of-band ack channel (modeled like the
 *    credit wires: lossless, zero cost) and duplicates are absorbed
 *    at the sink.
 *  - OS: LockManager / QSpinlock watchdogs re-issue lost lock
 *    protocol messages (see os/params.hh watchdog knobs).
 *  - Sim: a forward-progress watchdog fails fast on a wedged run
 *    (see SystemConfig::progressWindow).
 *
 * With every rate at zero the injector is inactive and every hook is
 * a dead branch: behaviour is bit-identical to a build without the
 * subsystem.
 */

#ifndef OCOR_NOC_FAULT_HH
#define OCOR_NOC_FAULT_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "noc/packet.hh"

namespace ocor
{

/** Transient-fault model of the mesh links plus recovery knobs. */
struct FaultConfig
{
    /** Probability a packet is dropped per link traversal (whole
     * packet: every flit of it vanishes on that link). */
    double dropRate = 0.0;

    /** Probability a flit is corrupted per link traversal (payload
     * bit-flip, caught by the NI's CRC check at ejection). */
    double corruptRate = 0.0;

    /** Probability a flit is stalled on the wire. */
    double jitterRate = 0.0;

    /** Maximum extra cycles of a jitter stall (uniform in
     * [1, jitterMax]). */
    unsigned jitterMax = 4;

    /** Restrict faults to lock-protocol packets. */
    bool lockOnly = false;

    /**
     * Restrict faults to these link ids (empty = every link). Links
     * are numbered in construction order: for each node in row-major
     * order its east pair (out, in) then its south pair, followed by
     * one (NI->router, router->NI) pair per node.
     */
    std::vector<unsigned> targetLinks;

    /** Extra seed mixed into the experiment seed. */
    std::uint64_t seed = 0;

    // --- recovery ---------------------------------------------------

    /** Sender-side NI retransmission of unacked packets. */
    bool retransmit = true;

    /** Cycles before the first retransmission of an unacked packet.
     * Must exceed a congested round trip or spurious duplicates (all
     * absorbed, but wasteful) dominate. */
    unsigned retryTimeout = 4096;

    /** Retransmissions per packet before giving up (unrecoverable). */
    unsigned maxRetries = 8;

    /** Exponential backoff: the timeout doubles backoffShift times
     * per attempt (0 = constant timeout). */
    unsigned backoffShift = 1;

    /** True when any fault can actually occur. */
    bool enabled() const
    {
        return dropRate > 0.0 || corruptRate > 0.0 || jitterRate > 0.0;
    }

    /** ocor_fatal() on out-of-range knobs. */
    void validate() const;
};

/** Fault and recovery counters (graceful-degradation observability). */
struct FaultStats
{
    std::uint64_t packetsDropped = 0;  ///< whole packets lost on a link
    std::uint64_t flitsDropped = 0;    ///< flits of dropped packets
    std::uint64_t flitsCorrupted = 0;
    std::uint64_t flitsDelayed = 0;
    std::uint64_t crcRejects = 0;      ///< packets discarded at the NI
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicatesDropped = 0; ///< absorbed at the sink NI
    std::uint64_t unrecoverable = 0;   ///< retries exhausted

    /** Total injected fault events. */
    std::uint64_t faultsInjected() const
    {
        return packetsDropped + flitsCorrupted + flitsDelayed;
    }
};

/**
 * The seeded fault oracle every Link and NI consults. One instance
 * per System; pointer-shared, never owned by the NoC classes.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, std::uint64_t seed);

    /** False when no fault can occur: every hook short-circuits. */
    bool active() const { return active_; }

    const FaultConfig &config() const { return cfg_; }

    /** Is (link, packet) eligible for faults under the targeting? */
    bool targets(unsigned link, const Packet &pkt) const;

    /** Draw: drop the whole packet on this link traversal? */
    bool drawDrop();

    /** Draw: corrupt this flit? */
    bool drawCorrupt();

    /** Draw: extra stall cycles for this flit (0 = none). */
    unsigned drawJitter();

    /** Retransmission deadline after @p attempts prior attempts. */
    Cycle backoff(unsigned attempts) const;

    FaultStats &stats() { return stats_; }
    const FaultStats &stats() const { return stats_; }

  private:
    FaultConfig cfg_;
    bool active_;
    Rng rng_;
    FaultStats stats_;
};

/** Incremental CRC-32 (reflected 0xEDB88320) over raw bytes. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

/**
 * Header CRC of a packet: everything a fault could silently corrupt
 * (type, endpoints, payload fields, priority header, lineage).
 * Stamped into Packet::crc by the source NI and re-checked at
 * ejection.
 */
std::uint32_t packetCrc(const Packet &pkt);

} // namespace ocor

#endif // OCOR_NOC_FAULT_HH
