/**
 * @file
 * Network packet model.
 *
 * One cache block (128 B) travels as one 8-flit packet over the
 * 128-bit datapath; control / coherence messages are single-flit
 * packets (Table 2). Lock-protocol packets additionally carry the
 * OCOR priority header fields of Figure 8.
 */

#ifndef OCOR_NOC_PACKET_HH
#define OCOR_NOC_PACKET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/types.hh"
#include "core/priority.hh"

namespace ocor
{

/** Every protocol message type that rides the NoC. */
enum class MsgType : std::uint8_t
{
    // Coherence / data traffic (priority check bit = 0).
    GetS,       ///< read request L1 -> home directory
    GetM,       ///< write/ownership request L1 -> home directory
    PutM,       ///< dirty eviction writeback (data) L1 -> home
    PutE,       ///< clean-exclusive eviction notice L1 -> home
    Inv,        ///< invalidation home -> sharer L1
    InvAck,     ///< invalidation acknowledgement L1 -> home
    Fetch,      ///< owner data recall home -> owner L1
    FetchResp,  ///< owner data writeback (data) L1 -> home
    Data,       ///< shared data response (data) home -> L1
    DataExcl,   ///< exclusive/modified data response (data) home -> L1
    WbAck,      ///< writeback acknowledgement home -> L1
    Unblock,    ///< fill confirmation L1 -> home (closes the tx)

    // Off-chip memory traffic (priority check bit = 0).
    MemRead,    ///< line fetch L2 bank -> memory controller
    MemWrite,   ///< line writeback (data) L2 bank -> memory controller
    MemResp,    ///< line fill (data) memory controller -> L2 bank

    // Lock protocol (priority check bit = 1 under OCOR).
    LockTry,    ///< atomic_try_lock request core -> home bank
    LockGrant,  ///< lock granted home -> core
    LockFail,   ///< lock denied (models the invalidation of Fig. 4)
    LockFreeNotify, ///< release invalidation home -> polling sharers
    LockRelease,///< atomic_release store core -> home bank
    FutexWait,  ///< sys_futex(FUTEX_WAIT) registration core -> home
    FutexWake,  ///< sys_futex(FUTEX_WAKE) request core -> home
    WakeNotify, ///< wake-up of one sleeping waiter home -> core

    NumTypes
};

/** Human-readable message type name (for traces and tests). */
const char *msgTypeName(MsgType t);

/** True for message types that belong to the lock protocol. */
bool isLockProtocol(MsgType t);

/** True for message types that carry a full cache line (8 flits). */
bool carriesData(MsgType t);

/** A protocol message travelling the network as a packet. */
struct Packet
{
    std::uint64_t id = 0;       ///< globally unique, for tracing
    MsgType type = MsgType::Data;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    unsigned numFlits = 1;

    /** OCOR header fields (Figure 8); empty on normal packets. */
    PriorityFields priority;

    // --- protocol payload ------------------------------------------
    Addr addr = 0;              ///< line address / lock word address
    ThreadId thread = invalidThread; ///< issuing / target thread
    NodeId requester = invalidNode;  ///< original requester (3-party)
    std::uint32_t aux = 0;      ///< ack counts, flags, etc.

    // --- fault tolerance (populated only under fault injection) -----
    /** Retransmission lineage: the id of the first transmission; all
     * retransmitted clones share it (sink-side duplicate detection,
     * ack matching). 0 = never tracked. */
    std::uint64_t seq = 0;
    /** Header CRC stamped by the source NI, re-checked at ejection. */
    std::uint32_t crc = 0;
    /** Retransmission attempt (0 = original transmission). */
    unsigned attempt = 0;

    // --- bookkeeping -------------------------------------------------
    Cycle injectCycle = 0;      ///< enqueued at the source NI
    Cycle networkEnter = 0;     ///< first flit left the source NI
    Cycle ejectCycle = 0;       ///< tail flit consumed at the sink NI

    std::string describe() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/** Injection hook handed to protocol engines by the system glue. */
using SendFn = std::function<void(const PacketPtr &, Cycle)>;

/** Allocate a packet with a fresh id and a size implied by its type. */
PacketPtr makePacket(MsgType type, NodeId src, NodeId dst, Addr addr);

/**
 * Retransmission copy: a fresh packet (new id) carrying the same
 * protocol content, priority header and lineage @c seq as @p orig,
 * with @c attempt incremented. The original may still be in flight;
 * the clone must be an independent object so its flits never alias.
 */
PacketPtr clonePacket(const Packet &orig);

/** Number of flits for a message of type @p t (1 or dataPacketFlits). */
unsigned packetFlits(MsgType t);

/** Flits of a full-cache-line packet (128 B line / 128-bit flits). */
inline constexpr unsigned dataPacketFlits = 8;

} // namespace ocor

#endif // OCOR_NOC_PACKET_HH
