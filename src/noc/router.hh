/**
 * @file
 * Two-stage pipelined virtual-channel router with priority-based VC
 * and switch allocation (Figure 7).
 *
 * Stage 1 performs Route Computation, VC Allocation and Switch
 * Allocation in parallel; stage 2 is Switch Traversal. The pipeline
 * is modeled by flit eligibility times: a flit that arrives at cycle
 * t may be VC-allocated from t+1 and may traverse the switch from
 * t+routerStages; traversal puts it on the output link (one more
 * linkLatency cycle to the neighbor).
 *
 * Under OCOR, both VA and SA arbitrate by the Table-1 rank of the
 * candidate packet (see core/priority.hh); switch allocation is
 * two-staged exactly as Section 4.2 describes: a Local Priority
 * Arbiter per input port selects the best local VC, then a global
 * priority arbiter per output port selects among the port winners.
 * With OCOR disabled, every rank is zero and all arbitration
 * degrades to the baseline round-robin policy.
 */

#ifndef OCOR_NOC_ROUTER_HH
#define OCOR_NOC_ROUTER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/ocor_config.hh"
#include "noc/arbiter.hh"
#include "noc/input_unit.hh"
#include "noc/link.hh"
#include "noc/output_unit.hh"
#include "noc/params.hh"
#include "noc/routing.hh"

namespace ocor
{

class Tracer;
class CheckerRegistry;

/** Per-router observability counters. */
struct RouterStats
{
    std::uint64_t flitsRouted = 0;
    std::uint64_t lockFlitsRouted = 0;
    std::uint64_t saGrants = 0;
    std::uint64_t saConflictLosses = 0;
    std::uint64_t vaGrants = 0;
};

/** One mesh router. */
class Router
{
  public:
    Router(NodeId id, const MeshShape &mesh, const NocParams &params,
           const OcorConfig &ocor);

    /**
     * Wire one port. @p in_link delivers flits *to* this router (we
     * send credits back on it); @p out_link carries flits we send
     * (credits for us arrive on it). Either may be null at mesh
     * edges.
     */
    void attach(unsigned port, Link *in_link, Link *out_link);

    /** Advance one cycle: credits, deliveries, VA, SA+ST. */
    void tick(Cycle now);

    NodeId id() const { return id_; }
    const RouterStats &stats() const { return stats_; }

    /** Attach the event tracer (null = tracing off, zero overhead). */
    void setTracer(Tracer *t) { trace_ = t; }

    /** Attach the invariant checker (null = checking off). */
    void setChecker(CheckerRegistry *c) { check_ = c; }

    /**
     * Test hook: invert every Table-1 rank fed to the VA/SA
     * arbiters, so the *lowest*-priority competitor wins. Exists
     * solely so seeded-violation tests can prove the arbitration
     * checker fires; never set outside tests.
     */
    void testInvertArbitration(bool on) { testInvertArb_ = on; }

    /**
     * Test hook: swap the two oldest buffered flits of one input VC,
     * violating FIFO order. Seeded-violation tests only.
     */
    void testSwapVcFlits(unsigned port, unsigned v);

    /** Buffered flit count (for drain checks and tests). */
    unsigned occupancy() const;

    /** Direct VC inspection for white-box tests. */
    const VcState &vc(unsigned port, unsigned v) const
    {
        return inputs_[port].vcs[v];
    }

  private:
    void deliverIncoming(Cycle now);
    void vcAllocation(Cycle now);
    void switchAllocation(Cycle now);

    /** Table-1 rank of the packet at the head of an input VC. */
    std::int64_t headRank(const VcState &vc) const;

    NodeId id_;
    MeshShape mesh_;
    NocParams params_;
    const OcorConfig &ocor_;

    std::vector<InputUnit> inputs_;
    std::vector<OutputUnit> outputs_;
    std::array<Link *, NumPorts> inLinks_{};
    std::array<Link *, NumPorts> outLinks_{};

    /** VA arbiter per output port; SA: local per input, global per
     * output. */
    std::vector<Arbiter> vaArb_;
    std::vector<Arbiter> saLocalArb_;
    std::vector<Arbiter> saGlobalArb_;

    /** Buffered flits across all input VCs (fast-path early out). */
    unsigned buffered_ = 0;

    /** Per-cycle scratch (avoids hot-loop allocation). */
    static constexpr unsigned maxVcs = 16;
    std::array<std::int64_t, NumPorts * maxVcs> vaRanks_{};
    std::array<std::int64_t, maxVcs> saLocalRanks_{};
    std::array<std::int64_t, NumPorts> saGlobalRanks_{};

    Tracer *trace_ = nullptr;
    CheckerRegistry *check_ = nullptr;
    bool testInvertArb_ = false;
    RouterStats stats_;
};

} // namespace ocor

#endif // OCOR_NOC_ROUTER_HH
