/**
 * @file
 * Two-stage pipelined virtual-channel router with priority-based VC
 * and switch allocation (Figure 7).
 *
 * Stage 1 performs Route Computation, VC Allocation and Switch
 * Allocation in parallel; stage 2 is Switch Traversal. The pipeline
 * is modeled by flit eligibility times: a flit that arrives at cycle
 * t may be VC-allocated from t+1 and may traverse the switch from
 * t+routerStages; traversal puts it on the output link (one more
 * linkLatency cycle to the neighbor).
 *
 * Under OCOR, both VA and SA arbitrate by the Table-1 rank of the
 * candidate packet (see core/priority.hh); switch allocation is
 * two-staged exactly as Section 4.2 describes: a Local Priority
 * Arbiter per input port selects the best local VC, then a global
 * priority arbiter per output port selects among the port winners.
 * With OCOR disabled, every rank is zero and all arbitration
 * degrades to the baseline round-robin policy.
 */

#ifndef OCOR_NOC_ROUTER_HH
#define OCOR_NOC_ROUTER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/ocor_config.hh"
#include "noc/arbiter.hh"
#include "noc/input_unit.hh"
#include "noc/link.hh"
#include "noc/output_unit.hh"
#include "noc/params.hh"
#include "noc/routing.hh"

namespace ocor
{

class Tracer;
class CheckerRegistry;

/** Per-router observability counters. */
struct RouterStats
{
    std::uint64_t flitsRouted = 0;
    std::uint64_t lockFlitsRouted = 0;
    std::uint64_t saGrants = 0;
    std::uint64_t saConflictLosses = 0;
    std::uint64_t vaGrants = 0;
};

/** One mesh router. */
class Router
{
  public:
    Router(NodeId id, const MeshShape &mesh, const NocParams &params,
           const OcorConfig &ocor);

    /**
     * Wire one port. @p in_link delivers flits *to* this router (we
     * send credits back on it); @p out_link carries flits we send
     * (credits for us arrive on it). Either may be null at mesh
     * edges.
     */
    void attach(unsigned port, Link *in_link, Link *out_link);

    /** Advance one cycle: credits, deliveries, VA, SA+ST. */
    void tick(Cycle now);

    /**
     * Event-core variant of tick(): behaviorally identical, but each
     * stage runs only when it provably has work. Link polls are gated
     * by the O(1) Link due tests, VA by vaPending_ (some input VC has
     * an unallocated head flit at its front) and SA by saPending_
     * (some input VC holds an allocated downstream VC). A skipped
     * stage would have been a pure no-op — no state change, no
     * arbiter pointer movement, no stats/trace/checker callbacks —
     * so the two tick flavors stay bit-identical by construction.
     */
    void tickEvent(Cycle now);

    NodeId id() const { return id_; }
    const RouterStats &stats() const { return stats_; }

    /** Attach the event tracer (null = tracing off, zero overhead). */
    void setTracer(Tracer *t) { trace_ = t; }

    /** Attach the invariant checker (null = checking off). */
    void setChecker(CheckerRegistry *c) { check_ = c; }

    /**
     * Test hook: invert every Table-1 rank fed to the VA/SA
     * arbiters, so the *lowest*-priority competitor wins. Exists
     * solely so seeded-violation tests can prove the arbitration
     * checker fires; never set outside tests.
     */
    void testInvertArbitration(bool on) { testInvertArb_ = on; }

    /**
     * Test hook: swap the two oldest buffered flits of one input VC,
     * violating FIFO order. Seeded-violation tests only.
     */
    void testSwapVcFlits(unsigned port, unsigned v);

    /** Buffered flit count (for drain checks and tests). */
    unsigned occupancy() const;

    /** O(1) any-buffered-flit test (event-core wakeup plumbing):
     * a router with no buffered flits has nothing to arbitrate, so
     * ticking it is a no-op. */
    bool busy() const { return buffered_ > 0; }

    /** Direct VC inspection for white-box tests. */
    const VcState &vc(unsigned port, unsigned v) const
    {
        return inputs_[port].vcs[v];
    }

  private:
    void deliverIncoming(Cycle now);
    void acceptCredits(unsigned port, Cycle now);
    void acceptFlits(unsigned port, Cycle now);
    void vcAllocation(Cycle now);
    void switchAllocation(Cycle now);

    /** Table-1 rank of the packet at the head of an input VC. */
    std::int64_t headRank(const VcState &vc) const;

    NodeId id_;
    MeshShape mesh_;
    NocParams params_;
    const OcorConfig &ocor_;

    std::vector<InputUnit> inputs_;
    std::vector<OutputUnit> outputs_;
    std::array<Link *, NumPorts> inLinks_{};
    std::array<Link *, NumPorts> outLinks_{};

    /** VA arbiter per output port; SA: local per input, global per
     * output. */
    std::vector<Arbiter> vaArb_;
    std::vector<Arbiter> saLocalArb_;
    std::vector<Arbiter> saGlobalArb_;

    /** Buffered flits across all input VCs (fast-path early out). */
    unsigned buffered_ = 0;

    /**
     * Incremental allocation-stage work counters, maintained at every
     * VC state transition (flit push, VA grant, tail traversal) and
     * consulted only by tickEvent(). vaPending_ counts input VCs
     * whose front flit is an unallocated head (VA candidates, once
     * their pipeline delay elapses); saPending_ counts input VCs with
     * an allocated downstream VC (outVc >= 0), i.e. packets still
     * traversing. Both are conservative over-approximations of
     * "stage can act this cycle" (pipeline timing and credit
     * availability are not folded in), which is exactly what a no-op
     * gate needs.
     */
    unsigned vaPending_ = 0;
    unsigned saPending_ = 0;

    /** Same counters broken down by input port, so the allocation
     * scans can skip whole ports (the common case is 1-2 active
     * ports out of 5 even in a busy router). */
    std::array<unsigned, NumPorts> vaPendingPort_{};
    std::array<unsigned, NumPorts> saPendingPort_{};

    /** Per-cycle scratch (avoids hot-loop allocation). */
    static constexpr unsigned maxVcs = 16;
    std::array<std::int64_t, NumPorts * maxVcs> vaRanks_{};
    std::array<std::int64_t, maxVcs> saLocalRanks_{};
    std::array<std::int64_t, NumPorts> saGlobalRanks_{};

    Tracer *trace_ = nullptr;
    CheckerRegistry *check_ = nullptr;
    bool testInvertArb_ = false;
    RouterStats stats_;
};

} // namespace ocor

#endif // OCOR_NOC_ROUTER_HH
