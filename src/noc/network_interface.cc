#include "noc/network_interface.hh"

#include <algorithm>
#include <array>

#include "check/checker_registry.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "core/priority.hh"
#include "noc/routing.hh"

namespace ocor
{

NetworkInterface::NetworkInterface(NodeId id, const NocParams &params,
                                   const OcorConfig &ocor)
    : id_(id), params_(params), ocor_(ocor), sendArb_(params.numVcs)
{
    outVcs_.resize(params.numVcs);
    for (auto &vc : outVcs_)
        vc.credits = params.vcDepth;
}

void
NetworkInterface::attach(Link *to_router, Link *from_router)
{
    toRouter_ = to_router;
    fromRouter_ = from_router;
}

void
NetworkInterface::inject(const PacketPtr &pkt, Cycle now)
{
    pkt->injectCycle = now;
    if (check_)
        check_->onInject(*pkt, now);
    if (trace_)
        trace_->record(TraceCat::Noc, TraceEv::PktInject, now, id_,
                       invalidThread, 0, pkt->id,
                       static_cast<std::uint32_t>(pkt->type),
                       pkt->dst);
    if (pkt->dst == id_) {
        // Local traffic never enters the mesh; model a minimal
        // loopback latency. It cannot fault, so it is never tracked.
        loopback_.emplace_back(now + 1, pkt);
        return;
    }
    if (fault_ && fault_->active()) {
        // Source NI duties under the fault model: establish the
        // retransmission lineage and stamp the header CRC.
        if (pkt->seq == 0)
            pkt->seq = pkt->id;
        pkt->crc = packetCrc(*pkt);
        if (fault_->config().retransmit && !outstanding_.count(pkt->seq))
            outstanding_[pkt->seq] =
                {pkt, now + fault_->backoff(0), 0};
    }
    injectQueue_.push_back({pkt, now + 1});
    stats_.injectQueuePeak =
        std::max<std::uint64_t>(stats_.injectQueuePeak,
                                injectQueue_.size());
}

void
NetworkInterface::onAcked(std::uint64_t seq, Cycle)
{
    outstanding_.erase(seq);
}

void
NetworkInterface::deliverDirect(const PacketPtr &pkt, Cycle now)
{
    pkt->ejectCycle = now;
    ++stats_.packetsEjected;
    if (trace_)
        trace_->record(TraceCat::Noc, TraceEv::PktEject, now, id_,
                       invalidThread, 0, pkt->id,
                       static_cast<std::uint32_t>(pkt->type),
                       pkt->src);
    if (deliver_)
        deliver_(pkt, now);
}

void
NetworkInterface::checkRetransmits(Cycle now)
{
    const FaultConfig &cfg = fault_->config();
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
        Outstanding &o = it->second;
        if (o.deadline > now) {
            ++it;
            continue;
        }
        if (o.attempts >= cfg.maxRetries) {
            ++fault_->stats().unrecoverable;
            ocor_warn("NI %u: giving up on %s after %u "
                      "retransmissions", id_,
                      o.pkt->describe().c_str(), o.attempts);
            it = outstanding_.erase(it);
            continue;
        }
        // Re-send a fresh copy (the timed-out transmission may still
        // be crawling through a congested mesh; the sink absorbs
        // duplicates). The clone keeps the OCOR priority header of
        // the original.
        PacketPtr copy = clonePacket(*o.pkt);
        copy->crc = packetCrc(*copy);
        copy->injectCycle = now;
        ++o.attempts;
        o.pkt = copy;
        o.deadline = now + fault_->backoff(o.attempts);
        ++fault_->stats().retransmissions;
        if (trace_)
            trace_->record(TraceCat::Noc, TraceEv::Retransmit, now,
                           id_, invalidThread, 0, copy->id,
                           static_cast<std::uint32_t>(copy->type),
                           o.attempts);
        injectQueue_.push_back({copy, now + 1});
        ++it;
    }
}

bool
NetworkInterface::idle() const
{
    if (!injectQueue_.empty() || !loopback_.empty())
        return false;
    if (!outstanding_.empty())
        return false; // a retransmission may still be due
    for (const auto &vc : outVcs_)
        if (vc.pkt)
            return false;
    return reassembly_.empty();
}

void
NetworkInterface::ejectIncoming(Cycle now)
{
    // Loopback deliveries.
    while (!loopback_.empty() && loopback_.front().first <= now) {
        auto pkt = loopback_.front().second;
        loopback_.pop_front();
        pkt->ejectCycle = now;
        ++stats_.packetsEjected;
        if (trace_)
            trace_->record(TraceCat::Noc, TraceEv::PktEject, now, id_,
                           invalidThread, 0, pkt->id,
                           static_cast<std::uint32_t>(pkt->type),
                           pkt->src);
        if (deliver_)
            deliver_(pkt, now);
    }

    if (!fromRouter_)
        return;

    // The router's local port delivers at most one flit per cycle;
    // the NI consumes it immediately and returns the credit.
    while (auto flit = fromRouter_->takeFlit(now)) {
        fromRouter_->sendCredit(flit->vc, now);
        if (flit->isHead()) {
            if (reassembly_.count(flit->vc))
                ocor_panic("NI %u: head over unfinished packet", id_);
            reassembly_[flit->vc] = {flit->pkt, false};
        }
        auto it = reassembly_.find(flit->vc);
        if (it == reassembly_.end())
            ocor_panic("NI %u: flit without head", id_);
        it->second.corrupt |= flit->corrupted;
        if (flit->isTail()) {
            RxPacket rx = it->second;
            reassembly_.erase(it);
            deliverMeshPacket(rx.pkt, rx.corrupt, now);
        }
    }
}

void
NetworkInterface::deliverMeshPacket(const PacketPtr &pkt, bool corrupt,
                                    Cycle now)
{
    if (fault_ && fault_->active() && pkt->seq != 0) {
        // Reassembly complete: re-compute the CRC over the received
        // header/payload and compare against the source NI's stamp.
        // A mismatch discards the packet; the sender's timeout will
        // retransmit it.
        if (corrupt || pkt->crc != packetCrc(*pkt)) {
            ++fault_->stats().crcRejects;
            if (trace_)
                trace_->record(
                    TraceCat::Noc, TraceEv::CrcReject, now, id_,
                    invalidThread, 0, pkt->id,
                    static_cast<std::uint32_t>(pkt->type), pkt->src);
            return;
        }
        if (ack_)
            ack_(pkt->src, pkt->seq, now);

        // Absorb duplicates (an original that outlived the sender's
        // timeout, or a redundant retransmission).
        if (!deliveredSeqs_.insert(pkt->seq).second) {
            ++fault_->stats().duplicatesDropped;
            return;
        }
        deliveredAge_.emplace_back(now, pkt->seq);
        // Age out lineages no retransmission can still revive: the
        // sender stops after the full backoff sequence has elapsed.
        Cycle horizon = 2 * fault_->backoff(
            fault_->config().maxRetries + 1);
        while (!deliveredAge_.empty() &&
               deliveredAge_.front().first + horizon < now) {
            deliveredSeqs_.erase(deliveredAge_.front().second);
            deliveredAge_.pop_front();
        }
    }
    pkt->ejectCycle = now;
    ++stats_.packetsEjected;
    if (trace_)
        trace_->record(TraceCat::Noc, TraceEv::PktEject, now, id_,
                       invalidThread, 0, pkt->id,
                       static_cast<std::uint32_t>(pkt->type),
                       pkt->src);
    if (deliver_)
        deliver_(pkt, now);
}

void
NetworkInterface::assignVcs(Cycle now)
{
    // Hand free VCs to the highest-rank waiting packets. FIFO order
    // among equal ranks (stable scan).
    for (auto &vc : outVcs_) {
        if (vc.pkt)
            continue;
        std::int64_t best = -1;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < injectQueue_.size(); ++i) {
            if (injectQueue_[i].ready > now)
                continue;
            auto rank = static_cast<std::int64_t>(
                priorityRank(ocor_, injectQueue_[i].pkt->priority));
            if (rank > best) {
                best = rank;
                best_idx = i;
            }
        }
        if (best < 0)
            break;
        vc.pkt = injectQueue_[best_idx].pkt;
        vc.nextFlit = 0;
        injectQueue_.erase(injectQueue_.begin()
                           + static_cast<std::ptrdiff_t>(best_idx));
    }
}

void
NetworkInterface::sendOneFlit(Cycle now)
{
    if (!toRouter_)
        return;

    std::array<std::int64_t, 16> rank_buf;
    auto ranks = std::span<std::int64_t>(rank_buf.data(),
                                         params_.numVcs);
    bool any = false;
    for (unsigned v = 0; v < params_.numVcs; ++v) {
        ranks[v] = -1;
        const auto &vc = outVcs_[v];
        if (!vc.pkt || vc.credits == 0)
            continue;
        ranks[v] = static_cast<std::int64_t>(
            priorityRank(ocor_, vc.pkt->priority));
        any = true;
    }
    if (!any)
        return;
    int winner = sendArb_.pick(ranks);
    if (winner < 0)
        return;

    auto &vc = outVcs_[static_cast<unsigned>(winner)];
    Flit flit;
    flit.pkt = vc.pkt;
    flit.index = vc.nextFlit;
    flit.type = flitTypeFor(vc.nextFlit, vc.pkt->numFlits);
    flit.vc = static_cast<unsigned>(winner);

    if (flit.isHead())
        vc.pkt->networkEnter = now;

    toRouter_->sendFlit(flit, now);
    --vc.credits;
    ++vc.nextFlit;
    ++stats_.flitsInjected;
    // The NI's injection VCs are "port NumPorts" in the credit
    // ledger: a pseudo-port that can never clash with a router port.
    if (check_)
        check_->onTraversal(id_, NumPorts, flit.vc, now);

    if (flit.isTail()) {
        ++stats_.packetsInjected;
        if (isLockProtocol(vc.pkt->type))
            ++stats_.lockPacketsInjected;
        vc.pkt.reset();
        vc.nextFlit = 0;
    }
}

void
NetworkInterface::tick(Cycle now)
{
    // Credits from the router's local input port.
    if (toRouter_) {
        for (unsigned v : toRouter_->takeCredits(now)) {
            if (v >= params_.numVcs)
                ocor_panic("NI %u: bad credit vc %u", id_, v);
            auto &vc = outVcs_[v];
            if (vc.credits >= params_.vcDepth)
                ocor_panic("NI %u: credit overflow", id_);
            ++vc.credits;
            if (check_)
                check_->onCreditReturn(id_, NumPorts, v, now);
        }
    }

    ejectIncoming(now);
    if (fault_ && fault_->active() && fault_->config().retransmit)
        checkRetransmits(now);
    assignVcs(now);
    sendOneFlit(now);
}

void
NetworkInterface::tickEvent(Cycle now)
{
    bool due = (toRouter_ && toRouter_->creditDue(now)) ||
               (fromRouter_ && fromRouter_->flitDue(now)) ||
               (!loopback_.empty() && loopback_.front().first <= now) ||
               (!injectQueue_.empty() &&
                injectQueue_.front().ready <= now);
    if (!due) {
        for (const auto &vc : outVcs_) {
            if (vc.pkt && vc.credits > 0) {
                due = true;
                break;
            }
        }
    }
    if (!due && fault_ && fault_->active() &&
        fault_->config().retransmit) {
        for (const auto &[seq, o] : outstanding_) {
            if (o.deadline <= now) {
                due = true;
                break;
            }
        }
    }
    if (due)
        tick(now);
}

} // namespace ocor
