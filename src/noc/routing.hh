/**
 * @file
 * Mesh topology coordinates and dimension-ordered (XY) routing.
 *
 * The target CMP (Section 3.1) organizes routers in a 2D mesh and
 * routes X first, then Y, which is deadlock free with no extra VC
 * restrictions.
 */

#ifndef OCOR_NOC_ROUTING_HH
#define OCOR_NOC_ROUTING_HH

#include "common/types.hh"

namespace ocor
{

/** Router ports; Local connects the node's network interface. */
enum Port : unsigned
{
    PortNorth = 0,
    PortEast = 1,
    PortSouth = 2,
    PortWest = 3,
    PortLocal = 4,
    NumPorts = 5
};

/** Port name for traces and tests. */
const char *portName(unsigned port);

/** Rectangular mesh geometry and node-id mapping (row major). */
struct MeshShape
{
    unsigned width = 8;
    unsigned height = 8;

    unsigned numNodes() const { return width * height; }
    unsigned xOf(NodeId n) const { return n % width; }
    unsigned yOf(NodeId n) const { return n / width; }
    NodeId nodeAt(unsigned x, unsigned y) const
    {
        return y * width + x;
    }

    /** Neighbor of @p n through @p port, or invalidNode at an edge. */
    NodeId neighbor(NodeId n, unsigned port) const;

    /** Manhattan hop distance between two nodes. */
    unsigned hops(NodeId a, NodeId b) const;
};

/**
 * XY routing: output port at the router of @p here for a packet bound
 * to @p dst (PortLocal when here == dst).
 */
unsigned xyRoute(const MeshShape &mesh, NodeId here, NodeId dst);

} // namespace ocor

#endif // OCOR_NOC_ROUTING_HH
