#include "noc/network.hh"

#include "common/log.hh"

namespace ocor
{

Network::Network(const MeshShape &mesh, const NocParams &params,
                 const OcorConfig &ocor, FaultInjector *fault)
    : mesh_(mesh), params_(params), ocor_(ocor)
{
    const unsigned n = mesh.numNodes();
    routers_.reserve(n);
    nis_.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
        routers_.push_back(
            std::make_unique<Router>(i, mesh, params, ocor));
        nis_.push_back(
            std::make_unique<NetworkInterface>(i, params, ocor));
        if (fault) {
            nis_[i]->setFaultInjector(fault);
            nis_[i]->setAckChannel(
                [this](NodeId src, std::uint64_t seq, Cycle now) {
                    nis_[src]->onAcked(seq, now);
                });
        }
    }

    unsigned next_link_id = 0;
    auto new_link = [&]() {
        links_.push_back(std::make_unique<Link>(params.linkLatency));
        if (fault)
            links_.back()->setFaultInjector(fault, next_link_id);
        ++next_link_id;
        return links_.back().get();
    };

    // Inter-router links: create one per directed adjacency, wiring
    // east/west and north/south pairs once from the lower index side.
    for (NodeId i = 0; i < n; ++i) {
        NodeId east = mesh.neighbor(i, PortEast);
        if (east != invalidNode) {
            Link *i_to_e = new_link();
            Link *e_to_i = new_link();
            routers_[i]->attach(PortEast, e_to_i, i_to_e);
            routers_[east]->attach(PortWest, i_to_e, e_to_i);
        }
        NodeId south = mesh.neighbor(i, PortSouth);
        if (south != invalidNode) {
            Link *i_to_s = new_link();
            Link *s_to_i = new_link();
            routers_[i]->attach(PortSouth, s_to_i, i_to_s);
            routers_[south]->attach(PortNorth, i_to_s, s_to_i);
        }
    }

    // NI <-> router local port.
    for (NodeId i = 0; i < n; ++i) {
        Link *ni_to_r = new_link();
        Link *r_to_ni = new_link();
        routers_[i]->attach(PortLocal, ni_to_r, r_to_ni);
        nis_[i]->attach(ni_to_r, r_to_ni);
    }
}

void
Network::setNodeSink(NodeId node, NetworkInterface::DeliverFn fn)
{
    nis_[node]->setDeliver(
        [this, fn = std::move(fn)](const PacketPtr &pkt, Cycle now) {
            ++stats_.packetsDelivered;
            double lat =
                static_cast<double>(pkt->ejectCycle - pkt->injectCycle);
            stats_.packetLatency.sample(lat);
            stats_.packetLatencyHist.sample(lat);
            if (isLockProtocol(pkt->type)) {
                ++stats_.lockPacketsDelivered;
                stats_.lockPacketLatency.sample(lat);
                stats_.lockPacketLatencyHist.sample(lat);
            } else {
                stats_.dataPacketLatency.sample(lat);
            }
            fn(pkt, now);
        });
}

void
Network::send(const PacketPtr &pkt, Cycle now)
{
    if (pkt->src >= mesh_.numNodes() || pkt->dst >= mesh_.numNodes())
        ocor_panic("Network::send: bad endpoints %u->%u", pkt->src,
                   pkt->dst);
    nis_[pkt->src]->inject(pkt, now);
}

void
Network::tick(Cycle now)
{
    for (auto &r : routers_)
        r->tick(now);
    for (auto &ni : nis_)
        ni->tick(now);
}

bool
Network::idle() const
{
    for (const auto &r : routers_)
        if (r->occupancy() != 0)
            return false;
    for (const auto &ni : nis_)
        if (!ni->idle())
            return false;
    for (const auto &l : links_)
        if (!l->idle())
            return false;
    return true;
}

void
Network::setTracer(Tracer *t)
{
    for (auto &r : routers_)
        r->setTracer(t);
    for (auto &ni : nis_)
        ni->setTracer(t);
}

void
Network::setChecker(CheckerRegistry *c)
{
    for (auto &r : routers_)
        r->setChecker(c);
    for (auto &ni : nis_)
        ni->setChecker(c);
    for (auto &l : links_)
        l->setChecker(c);
}

std::uint64_t
Network::totalFlitsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->stats().flitsInjected;
    return n;
}

std::uint64_t
Network::totalPacketsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->stats().packetsInjected;
    return n;
}

std::uint64_t
Network::totalLockPacketsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->stats().lockPacketsInjected;
    return n;
}

} // namespace ocor
