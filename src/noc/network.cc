#include "noc/network.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"

namespace ocor
{

Network::Network(const MeshShape &mesh, const NocParams &params,
                 const OcorConfig &ocor, FaultInjector *fault)
    : mesh_(mesh), params_(params), ocor_(ocor)
{
    const unsigned n = mesh.numNodes();
    routers_.reserve(n);
    nis_.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
        routers_.push_back(
            std::make_unique<Router>(i, mesh, params, ocor));
        nis_.push_back(
            std::make_unique<NetworkInterface>(i, params, ocor));
        if (fault) {
            nis_[i]->setFaultInjector(fault);
            nis_[i]->setAckChannel(
                [this](NodeId src, std::uint64_t seq, Cycle now) {
                    nis_[src]->onAcked(seq, now);
                });
        }
    }

    unsigned next_link_id = 0;
    auto new_link = [&]() {
        links_.push_back(std::make_unique<Link>(params.linkLatency));
        if (fault)
            links_.back()->setFaultInjector(fault, next_link_id);
        ++next_link_id;
        return links_.back().get();
    };

    // Inter-router links: create one per directed adjacency, wiring
    // east/west and north/south pairs once from the lower index side.
    for (NodeId i = 0; i < n; ++i) {
        NodeId east = mesh.neighbor(i, PortEast);
        if (east != invalidNode) {
            Link *i_to_e = new_link();
            Link *e_to_i = new_link();
            routers_[i]->attach(PortEast, e_to_i, i_to_e);
            routers_[east]->attach(PortWest, i_to_e, e_to_i);
        }
        NodeId south = mesh.neighbor(i, PortSouth);
        if (south != invalidNode) {
            Link *i_to_s = new_link();
            Link *s_to_i = new_link();
            routers_[i]->attach(PortSouth, s_to_i, i_to_s);
            routers_[south]->attach(PortNorth, i_to_s, s_to_i);
        }
    }

    // NI <-> router local port.
    for (NodeId i = 0; i < n; ++i) {
        Link *ni_to_r = new_link();
        Link *r_to_ni = new_link();
        routers_[i]->attach(PortLocal, ni_to_r, r_to_ni);
        nis_[i]->attach(ni_to_r, r_to_ni);
    }
}

void
Network::setNodeSink(NodeId node, NetworkInterface::DeliverFn fn)
{
    nis_[node]->setDeliver(
        [this, fn = std::move(fn)](const PacketPtr &pkt, Cycle now) {
            ++stats_.packetsDelivered;
            double lat =
                static_cast<double>(pkt->ejectCycle - pkt->injectCycle);
            stats_.packetLatency.sample(lat);
            stats_.packetLatencyHist.sample(lat);
            if (isLockProtocol(pkt->type)) {
                ++stats_.lockPacketsDelivered;
                stats_.lockPacketLatency.sample(lat);
                stats_.lockPacketLatencyHist.sample(lat);
            } else {
                stats_.dataPacketLatency.sample(lat);
            }
            fn(pkt, now);
        });
}

void
Network::send(const PacketPtr &pkt, Cycle now)
{
    if (pkt->src >= mesh_.numNodes() || pkt->dst >= mesh_.numNodes())
        ocor_panic("Network::send: bad endpoints %u->%u", pkt->src,
                   pkt->dst);
    ++sendsTotal_;
    // Hybrid fast path: while no thread waits on any lock word and
    // the mesh population is below the analytic contention capacity,
    // non-lock traffic is delivered analytically. Lock-protocol
    // packets always travel the exact mesh so races keep full
    // fidelity (a lock operation also makes the window close, since
    // the acquirer itself counts as a waiter until CS entry), and
    // saturated spans do too: past the capacity knee latency is
    // dominated by queueing dynamics the mean-latency model cannot
    // reproduce, so fidelity wins over speed there.
    if (fastWaiters_ && *fastWaiters_ == 0
        && !isLockProtocol(pkt->type)
        && sendsTotal_ - stats_.packetsDelivered
               <= 3 * mesh_.numNodes()) {
        if (!windowOpen_) {
            windowOpen_ = true;
            windowOpenedAt_ = now;
            ++stats_.windowsOpened;
            if (trace_)
                trace_->record(TraceCat::Noc, TraceEv::WindowOpen,
                               now, pkt->src);
        }
        fastSend(pkt, now);
        return;
    }
    // Window closed (or lock packet): a fully-exact run would have
    // the outstanding population spread through the mesh right now,
    // but here part of it is analytic and the recent exact injections
    // are still clustered at their sources, so a transit would be
    // unrealistically fast — right when fidelity matters most (the
    // lock handover). Charge the missing congestion as an injection
    // delay with the full analytic contention at the moment a window
    // closes, fading out as exact traffic physically re-spreads
    // through the mesh: the fade tracks whichever is slower of the
    // analytic queue draining and a full congested-latency period
    // elapsing since the close.
    Cycle at = now;
    if (fastWaiters_) {
        if (windowOpen_) {
            windowOpen_ = false;
            windowClosedAt_ = now;
            ++stats_.windowsClosed;
            stats_.windowCycles += now - windowOpenedAt_;
            // Close cause, most specific first: a live waiter shuts
            // the window regardless of what this packet is; a lock
            // packet with zero waiters is the protocol edge (e.g. a
            // release); otherwise the population crossed capacity.
            std::uint32_t cause;
            if (*fastWaiters_ > 0) {
                ++stats_.windowCloseWaiter;
                cause = 0;
            } else if (isLockProtocol(pkt->type)) {
                ++stats_.windowCloseLock;
                cause = 1;
            } else {
                ++stats_.windowCloseLoad;
                cause = 2;
            }
            if (trace_)
                trace_->record(
                    TraceCat::Noc, TraceEv::WindowClose, now,
                    pkt->src, invalidThread, 0, 0, cause,
                    static_cast<std::uint32_t>(std::min<Cycle>(
                        now - windowOpenedAt_, 0xffffffffu)));
        }
        const Cycle extra =
            analyticLatency(*pkt) - uncontendedLatency(*pkt);
        const std::uint64_t load = sendsTotal_ - stats_.packetsDelivered;
        const Cycle qdelay = extra * fastQueue_.size()
                             / std::max<std::uint64_t>(load, 1);
        Cycle tdelay = 0;
        const Cycle horizon = 2 * extra;
        if (windowClosedAt_ != neverCycle
            && now < windowClosedAt_ + horizon && horizon > 0)
            tdelay = extra * (windowClosedAt_ + horizon - now) / horizon;
        at = now + std::max(qdelay, tdelay);
    }
    nis_[pkt->src]->inject(pkt, at);
}

Cycle
Network::uncontendedLatency(const Packet &pkt) const
{
    // Same-node traffic mirrors the exact model's 1-cycle loopback.
    if (pkt.src == pkt.dst)
        return 1;
    const Cycle hops = mesh_.hops(pkt.src, pkt.dst);
    // One cycle into the mesh, the router pipeline plus link
    // traversal per hop, serialization of the body flits behind the
    // head, one cycle out.
    return 2 + hops * (params_.routerStages + params_.linkLatency)
           + (pkt.numFlits - 1);
}

Cycle
Network::analyticLatency(const Packet &pkt) const
{
    Cycle lat = uncontendedLatency(pkt);
    if (pkt.src == pkt.dst)
        return lat;
    // Contention: every concurrently in-flight packet — analytic or
    // exact — competes for the same links. Counting the exact mesh
    // population matters at window-open: the mesh is still draining
    // the traffic of the preceding contention episode, and pricing
    // that in keeps the first analytic latencies of a window from
    // collapsing to the uncontended base. Below roughly one packet
    // per node the mesh absorbs traffic without queueing (VC buffers
    // cover the transient), so only the population above that
    // capacity is charged, spread across the mesh rows (each packet
    // crosses ~one row + one column under XY routing). The population
    // is counted send-side (every packet passes Network::send exactly
    // once) so NI-queued, loopback and analytic packets are all
    // covered; per-NI inject counters only tick at tail-flit mesh
    // entry and would let loopback deliveries underflow the balance.
    const std::uint64_t load = sendsTotal_ - stats_.packetsDelivered;
    const std::uint64_t cap = 3 * mesh_.numNodes();
    if (load > cap)
        lat += (load - cap) * pkt.numFlits
               / (mesh_.width + mesh_.height);
    return lat;
}

void
Network::fastSend(const PacketPtr &pkt, Cycle now)
{
    pkt->injectCycle = now;
    pkt->networkEnter = now;
    ++stats_.fastpathPackets;
    fastQueue_.push({now + analyticLatency(*pkt), fastSeq_++, pkt});
}

void
Network::drainFastpath(Cycle now)
{
    while (!fastQueue_.empty() && fastQueue_.top().at <= now) {
        PacketPtr pkt = fastQueue_.top().pkt;
        fastQueue_.pop();
        nis_[pkt->dst]->deliverDirect(pkt, now);
    }
}

void
Network::tick(Cycle now)
{
    if (!fastQueue_.empty())
        drainFastpath(now);
    // Legacy exact path: every component every cycle, by definition.
    for (auto &r : routers_)  // simlint: allow(unconditional-tick)
        r->tick(now);
    for (auto &ni : nis_)  // simlint: allow(unconditional-tick)
        ni->tick(now);
}

void
Network::tickEvent(Cycle now)
{
    if (!fastQueue_.empty())
        drainFastpath(now);
    for (auto &r : routers_)
        r->tickEvent(now);
    for (auto &ni : nis_)
        ni->tickEvent(now);
}

Cycle
Network::nextWake(Cycle now) const
{
    for (const auto &r : routers_)
        if (r->busy())
            return now + 1;
    for (const auto &l : links_)
        if (!l->idle())
            return now + 1;
    Cycle w = neverCycle;
    for (const auto &ni : nis_) {
        Cycle n = ni->nextWake(now);
        if (n < w)
            w = n;
    }
    if (!fastQueue_.empty())
        w = std::min(w, fastQueue_.top().at);
    if (w <= now)
        w = now + 1;
    return w;
}

const char *
netWakeReasonName(NetWakeReason r)
{
    switch (r) {
      case NetWakeReason::RouterBusy: return "router_busy";
      case NetWakeReason::LinkBusy:   return "link_busy";
      case NetWakeReason::Fastpath:   return "fastpath";
      case NetWakeReason::NiQueue:    return "ni_queue";
      case NetWakeReason::Idle:       return "idle";
      default:                        return "?";
    }
}

NetWakeReason
Network::wakeReason(Cycle now) const
{
    for (const auto &r : routers_)
        if (r->busy())
            return NetWakeReason::RouterBusy;
    for (const auto &l : links_)
        if (!l->idle())
            return NetWakeReason::LinkBusy;
    Cycle ni_wake = neverCycle;
    for (const auto &ni : nis_)
        ni_wake = std::min(ni_wake, ni->nextWake(now));
    if (!fastQueue_.empty() && fastQueue_.top().at <= ni_wake)
        return NetWakeReason::Fastpath;
    if (ni_wake != neverCycle)
        return NetWakeReason::NiQueue;
    return NetWakeReason::Idle;
}

void
Network::finalizeWindows(Cycle now)
{
    if (!windowOpen_)
        return;
    stats_.windowCycles += now - windowOpenedAt_;
    windowOpenedAt_ = now; // idempotent: re-finalizing adds zero
}

bool
Network::idle() const
{
    for (const auto &r : routers_)
        if (r->occupancy() != 0)
            return false;
    for (const auto &ni : nis_)
        if (!ni->idle())
            return false;
    for (const auto &l : links_)
        if (!l->idle())
            return false;
    return fastQueue_.empty();
}

void
Network::setTracer(Tracer *t)
{
    trace_ = t;
    for (auto &r : routers_)
        r->setTracer(t);
    for (auto &ni : nis_)
        ni->setTracer(t);
}

void
Network::setChecker(CheckerRegistry *c)
{
    for (auto &r : routers_)
        r->setChecker(c);
    for (auto &ni : nis_)
        ni->setChecker(c);
    for (auto &l : links_)
        l->setChecker(c);
}

std::uint64_t
Network::totalFlitsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->stats().flitsInjected;
    return n;
}

std::uint64_t
Network::totalPacketsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->stats().packetsInjected;
    return n;
}

std::uint64_t
Network::totalLockPacketsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->stats().lockPacketsInjected;
    return n;
}

} // namespace ocor
