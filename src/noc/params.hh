/**
 * @file
 * Structural parameters of the NoC (Table 2 defaults).
 */

#ifndef OCOR_NOC_PARAMS_HH
#define OCOR_NOC_PARAMS_HH

namespace ocor
{

/** Buffering / pipelining parameters shared by routers and NIs. */
struct NocParams
{
    /** Virtual channels per port (Table 2: 6). */
    unsigned numVcs = 6;

    /** Flit slots per VC FIFO (Table 2: 4). */
    unsigned vcDepth = 4;

    /** Link traversal latency in cycles. */
    unsigned linkLatency = 1;

    /**
     * Router pipeline depth in cycles before a flit may traverse the
     * switch: stage 1 (RC/VA/SA in parallel) + stage 2 (ST) of the
     * 2-stage speculative router [Peh & Dally, HPCA'01].
     */
    unsigned routerStages = 2;

    /** Capacity of the NI injection queue (packets). */
    unsigned niQueueDepth = 64;
};

} // namespace ocor

#endif // OCOR_NOC_PARAMS_HH
