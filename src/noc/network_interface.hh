/**
 * @file
 * Network interface (NI): packetization, priority stamping, VC-based
 * injection, and reassembly/ejection.
 *
 * Section 4.1/4.2: the CPU writes the thread's RTR and PROG values to
 * core-local registers; the NI reads them when packetizing a locking
 * request and integrates the priority check bit, priority bits and
 * progress bits into the packet header. This class performs that
 * stamping (via core/priority.hh) for lock-protocol packets handed to
 * inject().
 *
 * Injection also honors packet rank: a locking request never waits
 * behind a queue of lower-priority data packets at its own NI under
 * OCOR.
 */

#ifndef OCOR_NOC_NETWORK_INTERFACE_HH
#define OCOR_NOC_NETWORK_INTERFACE_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/types.hh"
#include "core/ocor_config.hh"
#include "noc/arbiter.hh"
#include "noc/fault.hh"
#include "noc/link.hh"
#include "noc/params.hh"

namespace ocor
{

class Tracer;
class CheckerRegistry;

/** NI observability counters. */
struct NiStats
{
    std::uint64_t packetsInjected = 0;
    std::uint64_t flitsInjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t lockPacketsInjected = 0;
    std::uint64_t injectQueuePeak = 0;
};

/** Per-node network interface. */
class NetworkInterface
{
  public:
    using DeliverFn = std::function<void(const PacketPtr &, Cycle)>;

    /** Out-of-band delivery confirmation back to a source NI (modeled
     * like the credit wires: lossless and instantaneous). */
    using AckFn = std::function<void(NodeId src, std::uint64_t seq,
                                     Cycle now)>;

    NetworkInterface(NodeId id, const NocParams &params,
                     const OcorConfig &ocor);

    /** Wire the NI to its router (to_router carries our flits). */
    void attach(Link *to_router, Link *from_router);

    /** Node-side sink for ejected packets. */
    void setDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /**
     * Enable fault tolerance: stamp a CRC into every injected packet,
     * verify it at ejection (discarding corrupted packets), absorb
     * duplicates, and — when the config enables retransmission —
     * track every in-flight packet and re-send unacked ones with
     * exponential backoff until maxRetries is exhausted. Inert while
     * @p fi is null or inactive.
     */
    void setFaultInjector(FaultInjector *fi) { fault_ = fi; }

    /** Route for delivery confirmations (set by the Network). */
    void setAckChannel(AckFn fn) { ack_ = std::move(fn); }

    /** A packet this NI sent reached its destination intact. */
    void onAcked(std::uint64_t seq, Cycle now);

    /**
     * Hybrid-fidelity delivery: hand @p pkt to the node sink as if
     * it had been reassembled from the mesh, with ejection
     * bookkeeping (eject cycle, stats, trace) but no flit transport.
     * Only the Network's analytic fast path calls this.
     */
    void deliverDirect(const PacketPtr &pkt, Cycle now);

    /** Packets awaiting delivery confirmation (tests). */
    std::size_t outstandingCount() const { return outstanding_.size(); }

    /**
     * Queue a packet for injection during cycle @p now; the caller
     * has already stamped priority fields (see stampAndInject for
     * the common path). Same-node packets take a 1-cycle loopback.
     */
    void inject(const PacketPtr &pkt, Cycle now);

    /** Advance one cycle: ejection, VC assignment, flit send. */
    void tick(Cycle now);

    /**
     * Event-core variant of tick(): runs the full tick only when some
     * stage provably has work at @p now — a credit or flit due on the
     * router links, a loopback or injection-queue entry whose ready
     * cycle has arrived (both FIFOs are monotone, so front checks are
     * exact), an active output VC with credit to send, or a due
     * retransmission deadline. When none hold, tick() would mutate
     * nothing (no arbiter pick, no stats, no callbacks), so skipping
     * it is bit-identical.
     */
    void tickEvent(Cycle now);

    /**
     * Earliest future cycle tick() could do any work, seen from
     * cycle @p now (neverCycle = none pending). Loopback and inject
     * queues are FIFO by construction (entries are stamped now+1 at
     * push, and now is monotone), so their fronts are minima. Active
     * output VCs and pending reassembly answer conservatively
     * (now + 1): ticking early is a no-op, missing a due cycle is
     * not. Credit arrival and flit ejection are driven by link
     * state, which the Network-level wake scan covers.
     */
    Cycle
    nextWake(Cycle now) const
    {
        Cycle w = neverCycle;
        if (!loopback_.empty())
            w = std::min(w, loopback_.front().first);
        if (!injectQueue_.empty())
            w = std::min(w, injectQueue_.front().ready);
        for (const auto &vc : outVcs_)
            if (vc.pkt)
                return std::min(w, now + 1);
        if (!reassembly_.empty())
            return std::min(w, now + 1);
        for (const auto &[seq, o] : outstanding_)
            w = std::min(w, o.deadline);
        return w;
    }

    /** True when nothing is queued or in flight inside this NI. */
    bool idle() const;

    NodeId id() const { return id_; }
    const NiStats &stats() const { return stats_; }

    /** Attach the event tracer (null = tracing off, zero overhead). */
    void setTracer(Tracer *t) { trace_ = t; }

    /** Attach the invariant checker (null = checking off). */
    void setChecker(CheckerRegistry *c) { check_ = c; }

    /** Packets waiting for a VC (tests and backpressure checks). */
    std::size_t queueDepth() const { return injectQueue_.size(); }

  private:
    void ejectIncoming(Cycle now);
    void assignVcs(Cycle now);
    void sendOneFlit(Cycle now);
    void deliverMeshPacket(const PacketPtr &pkt, bool corrupt,
                           Cycle now);
    void checkRetransmits(Cycle now);

    NodeId id_;
    NocParams params_;
    const OcorConfig &ocor_;

    Link *toRouter_ = nullptr;
    Link *fromRouter_ = nullptr;
    DeliverFn deliver_;

    struct QueuedPacket
    {
        PacketPtr pkt;
        Cycle ready = 0; ///< earliest cycle the head may leave
    };
    std::deque<QueuedPacket> injectQueue_;

    struct ActiveVc
    {
        PacketPtr pkt;       ///< null when the VC is free
        unsigned nextFlit = 0;
        unsigned credits = 0;
    };
    std::vector<ActiveVc> outVcs_;
    Arbiter sendArb_;

    /** Reassembly of incoming packets, keyed by VC. */
    struct RxPacket
    {
        PacketPtr pkt;
        bool corrupt = false; ///< any flit corrupted in flight
    };
    std::map<unsigned, RxPacket> reassembly_;

    /** Same-node loopback (src == dst), 1-cycle latency. */
    std::deque<std::pair<Cycle, PacketPtr>> loopback_;

    // --- fault tolerance (inert unless fault_ is active) -----------
    FaultInjector *fault_ = nullptr;
    AckFn ack_;

    /** Sender side: packets awaiting the delivery ack, keyed by
     * lineage seq. */
    struct Outstanding
    {
        PacketPtr pkt;     ///< latest transmission (original or clone)
        Cycle deadline;    ///< next retransmission time
        unsigned attempts; ///< retransmissions so far
    };
    std::map<std::uint64_t, Outstanding> outstanding_;

    /** Sink side: recently delivered lineages (duplicate absorption),
     * aged out once no retransmission can still be in flight. */
    std::set<std::uint64_t> deliveredSeqs_;
    std::deque<std::pair<Cycle, std::uint64_t>> deliveredAge_;

    Tracer *trace_ = nullptr;
    CheckerRegistry *check_ = nullptr;
    NiStats stats_;
};

} // namespace ocor

#endif // OCOR_NOC_NETWORK_INTERFACE_HH
