#include "noc/link.hh"

#include "check/checker_registry.hh"
#include "common/log.hh"

namespace ocor
{

void
Link::sendFlit(const Flit &flit, Cycle now)
{
    if (lastFlitSend_ != neverCycle && lastFlitSend_ == now)
        ocor_panic("Link: two flits sent in cycle %llu",
                   static_cast<unsigned long long>(now));
    lastFlitSend_ = now;
    ++flitsCarried_;
    if (check_)
        check_->onLinkFlitSent();

    if (fault_ && fault_->active()) {
        Flit f = flit;
        Cycle extra = 0;
        if (fault_->targets(linkId_, *f.pkt)) {
            // Drop decisions are per packet (made at the head) so the
            // downstream agent never sees a partial packet; corruption
            // and jitter are per flit.
            if (f.isHead() && fault_->drawDrop())
                droppingPkts_.insert(f.pkt->id);
            auto it = droppingPkts_.find(f.pkt->id);
            if (it != droppingPkts_.end()) {
                if (f.isTail()) {
                    droppingPkts_.erase(it);
                    ++fault_->stats().packetsDropped;
                }
                ++fault_->stats().flitsDropped;
                // The flit consumed wire bandwidth but will never
                // occupy the downstream buffer slot the sender
                // debited: synthesize its credit so flow control
                // does not leak.
                credits_.emplace_back(now + latency_, f.vc);
                return;
            }
            if (fault_->drawCorrupt()) {
                f.corrupted = true;
                ++fault_->stats().flitsCorrupted;
            }
            extra = fault_->drawJitter();
            if (extra > 0)
                ++fault_->stats().flitsDelayed;
        }
        // A stalled flit must not be overtaken by later ones (FIFO
        // wire), and the wire still delivers at most one flit per
        // cycle: arrivals are strictly increasing.
        Cycle at = std::max(now + latency_ + extra, lastArrival_ + 1);
        lastArrival_ = at;
        flits_.emplace_back(at, f);
        return;
    }

    flits_.emplace_back(now + latency_, flit);
}

std::optional<Flit>
Link::takeFlit(Cycle now)
{
    if (flits_.empty() || flits_.front().first > now)
        return std::nullopt;
    if (flits_.front().first < now)
        ocor_panic("Link: flit missed its delivery cycle");
    Flit f = flits_.front().second;
    flits_.pop_front();
    if (check_)
        check_->onLinkFlitDelivered();
    return f;
}

void
Link::sendCredit(unsigned vc, Cycle now)
{
    credits_.emplace_back(now + latency_, vc);
}

std::vector<unsigned>
Link::takeCredits(Cycle now)
{
    std::vector<unsigned> out;
    while (!credits_.empty() && credits_.front().first <= now) {
        if (credits_.front().first < now)
            ocor_panic("Link: credit missed its delivery cycle");
        out.push_back(credits_.front().second);
        credits_.pop_front();
    }
    return out;
}

} // namespace ocor
