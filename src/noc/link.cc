#include "noc/link.hh"

#include "common/log.hh"

namespace ocor
{

void
Link::sendFlit(const Flit &flit, Cycle now)
{
    if (lastFlitSend_ != neverCycle && lastFlitSend_ == now)
        ocor_panic("Link: two flits sent in cycle %llu",
                   static_cast<unsigned long long>(now));
    lastFlitSend_ = now;
    flits_.emplace_back(now + latency_, flit);
}

std::optional<Flit>
Link::takeFlit(Cycle now)
{
    if (flits_.empty() || flits_.front().first > now)
        return std::nullopt;
    if (flits_.front().first < now)
        ocor_panic("Link: flit missed its delivery cycle");
    Flit f = flits_.front().second;
    flits_.pop_front();
    return f;
}

void
Link::sendCredit(unsigned vc, Cycle now)
{
    credits_.emplace_back(now + latency_, vc);
}

std::vector<unsigned>
Link::takeCredits(Cycle now)
{
    std::vector<unsigned> out;
    while (!credits_.empty() && credits_.front().first <= now) {
        if (credits_.front().first < now)
            ocor_panic("Link: credit missed its delivery cycle");
        out.push_back(credits_.front().second);
        credits_.pop_front();
    }
    return out;
}

} // namespace ocor
