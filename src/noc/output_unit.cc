#include "noc/output_unit.hh"

// Plain aggregate state; logic lives in Router.
