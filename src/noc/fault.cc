#include "noc/fault.hh"

#include <algorithm>

#include "common/log.hh"

namespace ocor
{

void
FaultConfig::validate() const
{
    auto check_rate = [](double r, const char *name) {
        if (r < 0.0 || r > 1.0)
            ocor_fatal("FaultConfig: %s must be in [0, 1] (got %g)",
                       name, r);
    };
    check_rate(dropRate, "dropRate");
    check_rate(corruptRate, "corruptRate");
    check_rate(jitterRate, "jitterRate");
    if (jitterRate > 0.0 && jitterMax == 0)
        ocor_fatal("FaultConfig: jitterMax must be > 0 when "
                   "jitterRate > 0");
    if (retryTimeout == 0)
        ocor_fatal("FaultConfig: retryTimeout must be > 0");
    if (retransmit && maxRetries == 0)
        ocor_fatal("FaultConfig: maxRetries must be > 0 when "
                   "retransmission is enabled");
    if (backoffShift > 8)
        ocor_fatal("FaultConfig: backoffShift must be <= 8 "
                   "(got %u)", backoffShift);
}

FaultInjector::FaultInjector(const FaultConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), active_(cfg.enabled()),
      rng_(seed ^ (cfg.seed * 0x9e3779b97f4a7c15ULL + 0xfa0171ULL))
{
    cfg_.validate();
}

bool
FaultInjector::targets(unsigned link, const Packet &pkt) const
{
    if (cfg_.lockOnly && !isLockProtocol(pkt.type))
        return false;
    if (!cfg_.targetLinks.empty() &&
        std::find(cfg_.targetLinks.begin(), cfg_.targetLinks.end(),
                  link) == cfg_.targetLinks.end())
        return false;
    return true;
}

bool
FaultInjector::drawDrop()
{
    return cfg_.dropRate > 0.0 && rng_.chance(cfg_.dropRate);
}

bool
FaultInjector::drawCorrupt()
{
    return cfg_.corruptRate > 0.0 && rng_.chance(cfg_.corruptRate);
}

unsigned
FaultInjector::drawJitter()
{
    if (cfg_.jitterRate <= 0.0 || !rng_.chance(cfg_.jitterRate))
        return 0;
    return static_cast<unsigned>(rng_.between(1, cfg_.jitterMax));
}

Cycle
FaultInjector::backoff(unsigned attempts) const
{
    // timeout << (attempts * backoffShift), saturated well below
    // overflow; with backoffShift == 0 the timeout is constant.
    unsigned shift = std::min(attempts * cfg_.backoffShift, 32u);
    return static_cast<Cycle>(cfg_.retryTimeout) << shift;
}

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= p[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

std::uint32_t
packetCrc(const Packet &pkt)
{
    // Hash the fields a receiver depends on. The packet id is
    // excluded: a retransmitted clone carries a fresh id but must
    // produce the same CRC as the original.
    struct Header
    {
        std::uint8_t type;
        std::uint8_t check;
        NodeId src, dst, requester;
        unsigned numFlits;
        Addr addr;
        ThreadId thread;
        std::uint32_t aux;
        std::uint64_t seq;
        std::uint64_t priorityBits, progressBits;
    } h{};
    h.type = static_cast<std::uint8_t>(pkt.type);
    h.check = pkt.priority.check ? 1 : 0;
    h.src = pkt.src;
    h.dst = pkt.dst;
    h.requester = pkt.requester;
    h.numFlits = pkt.numFlits;
    h.addr = pkt.addr;
    h.thread = pkt.thread;
    h.aux = pkt.aux;
    h.seq = pkt.seq;
    h.priorityBits = pkt.priority.priorityBits;
    h.progressBits = pkt.priority.progressBits;
    return crc32Update(0, &h, sizeof(h));
}

} // namespace ocor
