/**
 * @file
 * Point-to-point link with fixed latency.
 *
 * A Link is unidirectional for flits (upstream -> downstream) and
 * carries per-VC credits in the reverse direction. Bandwidth is one
 * flit per cycle; credits are not bandwidth limited (a credit wire
 * per VC).
 */

#ifndef OCOR_NOC_LINK_HH
#define OCOR_NOC_LINK_HH

#include <deque>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "noc/fault.hh"
#include "noc/flit.hh"

namespace ocor
{

class CheckerRegistry;

/** One-cycle (configurable) pipelined channel between two agents. */
class Link
{
  public:
    explicit Link(unsigned latency = 1) : latency_(latency) {}

    /**
     * Attach the fault oracle (may be null / inactive: zero-overhead
     * path). @p link_id identifies this link for per-link targeting.
     * Faults happen on the wire: whole packets dropped (their buffer
     * credits are synthesized so flow control never leaks), flits
     * corrupted, or flits stalled — always preserving FIFO order.
     */
    void setFaultInjector(FaultInjector *fi, unsigned link_id)
    {
        fault_ = fi;
        linkId_ = link_id;
    }

    /** Attach the invariant checker (null = checking off): feeds the
     * wire-level flit conservation ledger. */
    void setChecker(CheckerRegistry *c) { check_ = c; }

    /** Upstream puts a flit on the wire during cycle @p now. */
    void sendFlit(const Flit &flit, Cycle now);

    /** Downstream takes the flit arriving at cycle @p now, if any. */
    std::optional<Flit> takeFlit(Cycle now);

    /** Downstream returns a credit for VC @p vc during cycle @p now. */
    void sendCredit(unsigned vc, Cycle now);

    /** Upstream collects all credits arriving at cycle @p now. */
    std::vector<unsigned> takeCredits(Cycle now);

    unsigned latency() const { return latency_; }
    bool idle() const { return flits_.empty() && credits_.empty(); }

    /**
     * O(1) event-core due tests. Arrival cycles are monotone within
     * each queue (sendFlit keeps them strictly increasing even under
     * fault jitter; credits are stamped now + latency with monotone
     * now), so the front entry is the earliest and a front check is
     * exact, not heuristic.
     */
    bool flitDue(Cycle now) const
    {
        return !flits_.empty() && flits_.front().first <= now;
    }
    bool creditDue(Cycle now) const
    {
        return !credits_.empty() && credits_.front().first <= now;
    }

    /** Flits ever put on the wire (dropped ones included): the
     * utilization numerator sampled by interval telemetry. */
    std::uint64_t flitsCarried() const { return flitsCarried_; }

  private:
    unsigned latency_;
    CheckerRegistry *check_ = nullptr;
    std::uint64_t flitsCarried_ = 0;
    Cycle lastFlitSend_ = neverCycle;
    std::deque<std::pair<Cycle, Flit>> flits_;
    std::deque<std::pair<Cycle, unsigned>> credits_;

    // --- fault injection (inert unless fault_ is active) -----------
    FaultInjector *fault_ = nullptr;
    unsigned linkId_ = 0;
    /** Latest scheduled flit arrival: jitter must not reorder. */
    Cycle lastArrival_ = 0;
    /** Packets currently being dropped flit-by-flit on this link. */
    std::set<std::uint64_t> droppingPkts_;
};

} // namespace ocor

#endif // OCOR_NOC_LINK_HH
