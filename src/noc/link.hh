/**
 * @file
 * Point-to-point link with fixed latency.
 *
 * A Link is unidirectional for flits (upstream -> downstream) and
 * carries per-VC credits in the reverse direction. Bandwidth is one
 * flit per cycle; credits are not bandwidth limited (a credit wire
 * per VC).
 */

#ifndef OCOR_NOC_LINK_HH
#define OCOR_NOC_LINK_HH

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "noc/flit.hh"

namespace ocor
{

/** One-cycle (configurable) pipelined channel between two agents. */
class Link
{
  public:
    explicit Link(unsigned latency = 1) : latency_(latency) {}

    /** Upstream puts a flit on the wire during cycle @p now. */
    void sendFlit(const Flit &flit, Cycle now);

    /** Downstream takes the flit arriving at cycle @p now, if any. */
    std::optional<Flit> takeFlit(Cycle now);

    /** Downstream returns a credit for VC @p vc during cycle @p now. */
    void sendCredit(unsigned vc, Cycle now);

    /** Upstream collects all credits arriving at cycle @p now. */
    std::vector<unsigned> takeCredits(Cycle now);

    unsigned latency() const { return latency_; }
    bool idle() const { return flits_.empty() && credits_.empty(); }

  private:
    unsigned latency_;
    Cycle lastFlitSend_ = neverCycle;
    std::deque<std::pair<Cycle, Flit>> flits_;
    std::deque<std::pair<Cycle, unsigned>> credits_;
};

} // namespace ocor

#endif // OCOR_NOC_LINK_HH
