#include "noc/arbiter.hh"

#include "common/log.hh"

namespace ocor
{

int
Arbiter::pick(std::span<const std::int64_t> ranks)
{
    if (ranks.size() != numInputs_)
        ocor_panic("Arbiter: %zu ranks for %u inputs", ranks.size(),
                   numInputs_);

    std::int64_t best = -1;
    for (auto r : ranks)
        best = r > best ? r : best;
    if (best < 0)
        return -1;

    // Round-robin among the max-rank candidates, starting at the
    // pointer so ties rotate fairly.
    for (unsigned off = 0; off < numInputs_; ++off) {
        unsigned idx = (pointer_ + off) % numInputs_;
        if (ranks[idx] == best) {
            pointer_ = (idx + 1) % numInputs_;
            return static_cast<int>(idx);
        }
    }
    return -1; // unreachable
}

int
Arbiter::grantSingle(unsigned idx)
{
    if (idx >= numInputs_)
        ocor_panic("Arbiter: grantSingle(%u) with %u inputs", idx,
                   numInputs_);
    pointer_ = (idx + 1) % numInputs_;
    return static_cast<int>(idx);
}

LpaResult
lpaSelect(const OcorConfig &cfg, const std::vector<LpaInput> &inputs)
{
    LpaResult res;
    if (inputs.size() > 64)
        ocor_panic("lpaSelect: more than 64 inputs");

    // Stage a: gate priority/progress words with the check bit.
    // Disabled OCOR behaves as if no packet carried priority.
    std::vector<OneHot> prio(inputs.size(), 0);
    std::vector<OneHot> prog(inputs.size(), 0);
    std::uint64_t valid_mask = 0;
    OneHot prog_or = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (!inputs[i].valid)
            continue;
        valid_mask |= std::uint64_t{1} << i;
        if (cfg.enabled && inputs[i].fields.check) {
            prio[i] = inputs[i].fields.priorityBits;
            prog[i] = cfg.ruleSlowProgressFirst
                ? inputs[i].fields.progressBits
                : OneHot{1}; // progress rule off: all equal
            prog_or |= prog[i];
        }
    }
    if (valid_mask == 0)
        return res;

    if (prog_or == 0) {
        // Only normal packets request: all tie at level 0.
        res.highestLevel = 0;
        res.indexMask = valid_mask;
        return res;
    }

    // Stage b: slowest progress = lowest set bit of the OR-reduction.
    OneHot best_prog = prog_or & (~prog_or + 1);

    // Stage c: among candidates in the winning progress segment, the
    // highest priority bit wins.
    OneHot prio_or = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        if (prog[i] == best_prog)
            prio_or |= prio[i];
    OneHot best_prio = onehotHighest(prio_or);

    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        if (prog[i] == best_prog && prio[i] == best_prio)
            mask |= std::uint64_t{1} << i;

    // Extended level word: progress-major flattening so callers can
    // compare LPA outputs across input channels (global stage).
    unsigned prog_level = cfg.numProgressLevels - 1
        - onehotDecode(best_prog);
    unsigned prio_level = onehotDecode(best_prio);
    unsigned ext = 1 + prio_level + (cfg.numRtrLevels + 2) * prog_level;

    res.highestLevel = OneHot{1} << ext;
    res.indexMask = mask;
    return res;
}

} // namespace ocor
