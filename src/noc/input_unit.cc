#include "noc/input_unit.hh"

// Plain aggregate state; logic lives in Router. This translation unit
// anchors the module in the build.
