#include "noc/routing.hh"

#include <cstdlib>

#include "common/log.hh"

namespace ocor
{

const char *
portName(unsigned port)
{
    switch (port) {
      case PortNorth: return "N";
      case PortEast: return "E";
      case PortSouth: return "S";
      case PortWest: return "W";
      case PortLocal: return "L";
      default: return "?";
    }
}

NodeId
MeshShape::neighbor(NodeId n, unsigned port) const
{
    unsigned x = xOf(n);
    unsigned y = yOf(n);
    switch (port) {
      case PortNorth:
        return y == 0 ? invalidNode : nodeAt(x, y - 1);
      case PortSouth:
        return y == height - 1 ? invalidNode : nodeAt(x, y + 1);
      case PortWest:
        return x == 0 ? invalidNode : nodeAt(x - 1, y);
      case PortEast:
        return x == width - 1 ? invalidNode : nodeAt(x + 1, y);
      default:
        return invalidNode;
    }
}

unsigned
MeshShape::hops(NodeId a, NodeId b) const
{
    int dx = static_cast<int>(xOf(a)) - static_cast<int>(xOf(b));
    int dy = static_cast<int>(yOf(a)) - static_cast<int>(yOf(b));
    return static_cast<unsigned>(std::abs(dx) + std::abs(dy));
}

unsigned
xyRoute(const MeshShape &mesh, NodeId here, NodeId dst)
{
    if (here >= mesh.numNodes() || dst >= mesh.numNodes())
        ocor_panic("xyRoute: node out of mesh (%u, %u)", here, dst);
    unsigned hx = mesh.xOf(here), hy = mesh.yOf(here);
    unsigned dx = mesh.xOf(dst), dy = mesh.yOf(dst);
    if (hx != dx)
        return dx > hx ? PortEast : PortWest;
    if (hy != dy)
        return dy > hy ? PortSouth : PortNorth;
    return PortLocal;
}

} // namespace ocor
