#include "noc/flit.hh"

namespace ocor
{

FlitType
flitTypeFor(unsigned index, unsigned n)
{
    if (n <= 1)
        return FlitType::HeadTail;
    if (index == 0)
        return FlitType::Head;
    if (index == n - 1)
        return FlitType::Tail;
    return FlitType::Body;
}

} // namespace ocor
