/**
 * @file
 * Router input unit: per-VC flit FIFOs and their pipeline state.
 *
 * Each input port of the 2-stage router holds numVcs virtual-channel
 * FIFOs of vcDepth flits (Table 2: 6 VCs x 4 flits). Per VC we track
 * the computed route and the allocated downstream VC of the packet
 * currently at the head.
 */

#ifndef OCOR_NOC_INPUT_UNIT_HH
#define OCOR_NOC_INPUT_UNIT_HH

#include <deque>
#include <vector>

#include "common/types.hh"
#include "noc/flit.hh"

namespace ocor
{

/** A flit waiting in a VC buffer together with its arrival cycle. */
struct BufferedFlit
{
    Flit flit;
    Cycle arrival = 0;
};

/** State of one input virtual channel. */
struct VcState
{
    std::deque<BufferedFlit> fifo;

    /** Route computed for the packet at the head (RC stage done). */
    bool routed = false;
    unsigned outPort = 0;

    /** Downstream VC allocated by VA; -1 while unallocated. */
    int outVc = -1;

    bool empty() const { return fifo.empty(); }
    const BufferedFlit &front() const { return fifo.front(); }

    void
    reset()
    {
        routed = false;
        outVc = -1;
    }
};

/** One router input port: a column of VC FIFOs. */
struct InputUnit
{
    explicit InputUnit(unsigned num_vcs) : vcs(num_vcs) {}

    std::vector<VcState> vcs;
};

} // namespace ocor

#endif // OCOR_NOC_INPUT_UNIT_HH
