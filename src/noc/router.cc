#include "noc/router.hh"

#include <utility>

#include "check/checker_registry.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "core/priority.hh"

namespace ocor
{

Router::Router(NodeId id, const MeshShape &mesh,
               const NocParams &params, const OcorConfig &ocor)
    : id_(id), mesh_(mesh), params_(params), ocor_(ocor)
{
    if (params.numVcs > maxVcs)
        ocor_panic("Router: numVcs %u exceeds %u", params.numVcs,
                   maxVcs);
    inputs_.assign(NumPorts, InputUnit(params.numVcs));
    outputs_.assign(NumPorts, OutputUnit(params.numVcs, params.vcDepth));
    for (unsigned p = 0; p < NumPorts; ++p) {
        vaArb_.emplace_back(NumPorts * params.numVcs);
        saLocalArb_.emplace_back(params.numVcs);
        saGlobalArb_.emplace_back(NumPorts);
    }
}

void
Router::attach(unsigned port, Link *in_link, Link *out_link)
{
    if (port >= NumPorts)
        ocor_panic("Router::attach: bad port %u", port);
    inLinks_[port] = in_link;
    outLinks_[port] = out_link;
}

unsigned
Router::occupancy() const
{
    unsigned n = 0;
    for (const auto &in : inputs_)
        for (const auto &vc : in.vcs)
            n += static_cast<unsigned>(vc.fifo.size());
    return n;
}

std::int64_t
Router::headRank(const VcState &vc) const
{
    const auto &pkt = vc.front().flit.pkt;
    auto rank =
        static_cast<std::int64_t>(priorityRank(ocor_, pkt->priority));
    if (testInvertArb_)
        rank = (std::int64_t{1} << 20) - rank;
    return rank;
}

void
Router::testSwapVcFlits(unsigned port, unsigned v)
{
    auto &fifo = inputs_[port].vcs[v].fifo;
    if (fifo.size() >= 2)
        std::swap(fifo[0], fifo[1]);
}

void
Router::acceptCredits(unsigned p, Cycle now)
{
    // Credits returning from downstream.
    for (unsigned vc : outLinks_[p]->takeCredits(now)) {
        if (vc >= params_.numVcs)
            ocor_panic("router %u: bad credit vc %u", id_, vc);
        auto &state = outputs_[p].vcs[vc];
        if (state.credits >= params_.vcDepth)
            ocor_panic("router %u: credit overflow", id_);
        ++state.credits;
        if (check_)
            check_->onCreditReturn(id_, p, vc, now);
    }
}

void
Router::acceptFlits(unsigned p, Cycle now)
{
    // Flits arriving from upstream.
    while (auto flit = inLinks_[p]->takeFlit(now)) {
        auto &vc = inputs_[p].vcs[flit->vc];
        if (vc.fifo.size() >= params_.vcDepth)
            ocor_panic("router %u: VC overflow p=%u vc=%u",
                       id_, p, flit->vc);
        // A head landing at the front of an empty VC is a fresh VA
        // candidate (an empty VC cannot be mid-packet: outVc is
        // reset when the previous tail traverses, so front-is-head
        // implies unallocated).
        if (vc.fifo.empty() && flit->isHead()) {
            ++vaPending_;
            ++vaPendingPort_[p];
        }
        vc.fifo.push_back({*flit, now});
        ++buffered_;
        if (check_)
            check_->onVcPush(id_, p, flit->vc, *flit, now);
    }
}

void
Router::deliverIncoming(Cycle now)
{
    for (unsigned p = 0; p < NumPorts; ++p) {
        if (outLinks_[p])
            acceptCredits(p, now);
        if (inLinks_[p])
            acceptFlits(p, now);
    }
}

void
Router::vcAllocation(Cycle now)
{
    // Collect head flits needing RC + VA into a per-output request
    // mask over the flattened candidate index port * numVcs + vc.
    const unsigned nvc = params_.numVcs;

    std::array<unsigned, NumPorts> reqCount{};
    std::array<unsigned, NumPorts> soleReq{};
    auto ranks = std::span<std::int64_t>(vaRanks_.data(),
                                         NumPorts * nvc);

    // The ranks array is only read by the contested loop below, which
    // rewrites every entry before each pick; this pass just tallies
    // requesters, so ports with no unallocated head can be skipped
    // outright.
    for (unsigned p = 0; p < NumPorts; ++p) {
        if (vaPendingPort_[p] == 0)
            continue;
        for (unsigned v = 0; v < nvc; ++v) {
            auto &vc = inputs_[p].vcs[v];
            if (vc.empty())
                continue;
            const auto &bf = vc.front();
            if (!bf.flit.isHead())
                continue;
            // Stage-1 eligibility: one cycle after arrival.
            if (bf.arrival + 1 > now)
                continue;
            if (!vc.routed) {
                vc.outPort = xyRoute(mesh_, id_, bf.flit.pkt->dst);
                vc.routed = true;
            }
            if (vc.outVc >= 0)
                continue; // already allocated
            ++reqCount[vc.outPort];
            soleReq[vc.outPort] = p * nvc + v;
        }
    }

    for (unsigned op = 0; op < NumPorts; ++op) {
        if (reqCount[op] == 0)
            continue;
        if (reqCount[op] == 1) {
            // Single-requester fast path: no competition, so skip
            // the rank scan. grantSingle advances the round-robin
            // pointer exactly as the full arbitration would.
            int ovc = outputs_[op].findFreeVc();
            if (ovc < 0)
                continue;
            unsigned idx = soleReq[op];
            vaArb_[op].grantSingle(idx);
            outputs_[op].vcs[ovc].allocated = true;
            inputs_[idx / nvc].vcs[idx % nvc].outVc = ovc;
            --vaPending_;
            --vaPendingPort_[idx / nvc];
            ++saPending_;
            ++saPendingPort_[idx / nvc];
            ++stats_.vaGrants;
            if (trace_) {
                const auto &pkt =
                    *inputs_[idx / nvc].vcs[idx % nvc].front().flit.pkt;
                trace_->record(TraceCat::Noc, TraceEv::VcAlloc, now,
                               id_, invalidThread, 0, pkt.id,
                               static_cast<std::uint32_t>(pkt.type),
                               op);
            }
            continue;
        }
        // Grant free output VCs to requesters in rank order; the
        // arbiter's pointer rotates ties.
        while (reqCount[op] > 0 && outputs_[op].findFreeVc() >= 0) {
            for (unsigned p = 0; p < NumPorts; ++p) {
                if (vaPendingPort_[p] == 0) {
                    // No unallocated head on this port: nothing can
                    // be requesting, only the -1 fill is needed.
                    for (unsigned v = 0; v < nvc; ++v)
                        ranks[p * nvc + v] = -1;
                    continue;
                }
                for (unsigned v = 0; v < nvc; ++v) {
                    auto &vc = inputs_[p].vcs[v];
                    bool requesting = !vc.empty() && vc.routed &&
                        vc.outPort == op && vc.outVc < 0 &&
                        vc.front().flit.isHead() &&
                        vc.front().arrival + 1 <= now;
                    ranks[p * nvc + v] =
                        requesting ? headRank(vc) : -1;
                }
            }
            int winner = vaArb_[op].pick(ranks);
            if (winner < 0)
                break;
            if (check_ && check_->wantsArbitration()) {
                std::vector<const Packet *> cands(NumPorts * nvc,
                                                  nullptr);
                for (unsigned i = 0; i < NumPorts * nvc; ++i)
                    if (ranks[i] >= 0)
                        cands[i] = inputs_[i / nvc].vcs[i % nvc]
                                       .front().flit.pkt.get();
                check_->onArbGrant(id_, "va", cands,
                                   static_cast<unsigned>(winner),
                                   now);
            }
            unsigned wp = static_cast<unsigned>(winner) / nvc;
            unsigned wv = static_cast<unsigned>(winner) % nvc;
            int ovc = outputs_[op].findFreeVc();
            outputs_[op].vcs[ovc].allocated = true;
            inputs_[wp].vcs[wv].outVc = ovc;
            --vaPending_;
            --vaPendingPort_[wp];
            ++saPending_;
            ++saPendingPort_[wp];
            ++stats_.vaGrants;
            if (trace_) {
                const auto &pkt = *inputs_[wp].vcs[wv].front().flit.pkt;
                trace_->record(TraceCat::Noc, TraceEv::VcAlloc, now,
                               id_, invalidThread, 0, pkt.id,
                               static_cast<std::uint32_t>(pkt.type),
                               op);
            }
            --reqCount[op];
        }
    }
}

void
Router::switchAllocation(Cycle now)
{
    const unsigned nvc = params_.numVcs;

    // Local stage: per input port, pick the best ready VC (the LPA of
    // Figure 9, modeled by rank arbitration).
    struct Candidate
    {
        bool valid = false;
        unsigned inVc = 0;
        std::int64_t rank = -1;
        unsigned outPort = 0;
    };
    std::array<Candidate, NumPorts> local{};

    for (unsigned p = 0; p < NumPorts; ++p) {
        // Ports with no allocated VC can have no local candidate
        // (count would stay 0 below): skip the scan.
        if (saPendingPort_[p] == 0)
            continue;
        auto ranks = std::span<std::int64_t>(saLocalRanks_.data(),
                                             nvc);
        unsigned count = 0, lastV = 0;
        for (unsigned v = 0; v < nvc; ++v) {
            ranks[v] = -1;
            auto &vc = inputs_[p].vcs[v];
            if (vc.empty() || !vc.routed || vc.outVc < 0)
                continue;
            const auto &bf = vc.front();
            if (bf.arrival + params_.routerStages > now)
                continue; // still in the pipeline
            auto &ovc = outputs_[vc.outPort].vcs[vc.outVc];
            if (ovc.credits == 0)
                continue; // no downstream buffer space
            ranks[v] = headRank(vc);
            ++count;
            lastV = v;
        }
        if (count == 0)
            continue;
        // Lone ready VC: bypass the rank arbitration (pointer still
        // advances identically).
        int winner = count == 1 ? saLocalArb_[p].grantSingle(lastV)
                                : saLocalArb_[p].pick(ranks);
        if (winner >= 0) {
            if (count > 1 && check_ && check_->wantsArbitration()) {
                std::vector<const Packet *> cands(nvc, nullptr);
                for (unsigned v = 0; v < nvc; ++v)
                    if (ranks[v] >= 0)
                        cands[v] =
                            inputs_[p].vcs[v].front().flit.pkt.get();
                check_->onArbGrant(id_, "sa-local", cands,
                                   static_cast<unsigned>(winner),
                                   now);
            }
            auto &vc = inputs_[p].vcs[winner];
            local[p] = {true, static_cast<unsigned>(winner),
                        ranks[winner], vc.outPort};
        }
    }

    // Global stage: per output port, pick among input-port winners.
    for (unsigned op = 0; op < NumPorts; ++op) {
        auto &ranks = saGlobalRanks_;
        unsigned count = 0, lastP = 0;
        for (unsigned p = 0; p < NumPorts; ++p) {
            ranks[p] = -1;
            if (local[p].valid && local[p].outPort == op) {
                ranks[p] = local[p].rank;
                ++count;
                lastP = p;
            }
        }
        if (count == 0)
            continue;
        int winner = count == 1 ? saGlobalArb_[op].grantSingle(lastP)
                                : saGlobalArb_[op].pick(ranks);
        if (winner < 0)
            continue;
        if (count > 1 && check_ && check_->wantsArbitration()) {
            std::vector<const Packet *> cands(NumPorts, nullptr);
            for (unsigned pp = 0; pp < NumPorts; ++pp)
                if (local[pp].valid && local[pp].outPort == op)
                    cands[pp] = inputs_[pp].vcs[local[pp].inVc]
                                    .front().flit.pkt.get();
            check_->onArbGrant(id_, "sa-global", cands,
                               static_cast<unsigned>(winner), now);
        }
        if (count > 1)
            for (unsigned p = 0; p < NumPorts; ++p)
                if (local[p].valid && local[p].outPort == op &&
                    p != static_cast<unsigned>(winner))
                    ++stats_.saConflictLosses;

        // Switch traversal for the winner.
        unsigned p = static_cast<unsigned>(winner);
        auto &vc = inputs_[p].vcs[local[p].inVc];
        BufferedFlit bf = vc.fifo.front();
        vc.fifo.pop_front();
        --buffered_;
        if (check_)
            check_->onVcPop(id_, p, local[p].inVc, bf.flit, now);

        Flit out = bf.flit;
        out.vc = static_cast<unsigned>(vc.outVc);

        if (!outLinks_[op])
            ocor_panic("router %u: traversal to unattached port %u",
                       id_, op);
        outLinks_[op]->sendFlit(out, now);
        auto &ovc = outputs_[op].vcs[vc.outVc];
        --ovc.credits;
        if (check_)
            check_->onTraversal(id_, op, out.vc, now);

        // Return the freed buffer slot upstream.
        if (inLinks_[p])
            inLinks_[p]->sendCredit(local[p].inVc, now);

        ++stats_.saGrants;
        ++stats_.flitsRouted;
        if (isLockProtocol(out.pkt->type))
            ++stats_.lockFlitsRouted;
        if (trace_ && out.isHead())
            trace_->record(
                TraceCat::Noc, TraceEv::SaGrant, now, id_,
                invalidThread, 0, out.pkt->id,
                static_cast<std::uint32_t>(out.pkt->type),
                static_cast<std::uint32_t>(local[p].rank));

        if (out.isTail()) {
            ovc.allocated = false; // VC reusable by the next packet
            vc.reset();
            --saPending_;
            --saPendingPort_[p];
            // Anything left in the FIFO is the next packet, so its
            // head is now at the front awaiting VA.
            if (!vc.fifo.empty()) {
                ++vaPending_;
                ++vaPendingPort_[p];
            }
        }
    }
}

void
Router::tick(Cycle now)
{
    deliverIncoming(now);
    if (buffered_ == 0)
        return; // nothing to route this cycle
    vcAllocation(now);
    switchAllocation(now);
}

void
Router::tickEvent(Cycle now)
{
    for (unsigned p = 0; p < NumPorts; ++p) {
        if (outLinks_[p] && outLinks_[p]->creditDue(now))
            acceptCredits(p, now);
        if (inLinks_[p] && inLinks_[p]->flitDue(now))
            acceptFlits(p, now);
    }
    if (buffered_ == 0)
        return;
    // With no unallocated head anywhere, vcAllocation() degenerates
    // to a candidate scan that finds nothing (route computation only
    // runs for counted candidates), and with no allocated VC,
    // switchAllocation() finds no local-stage candidate: both are
    // provable no-ops, so the gates cannot change behavior.
    if (vaPending_ > 0)
        vcAllocation(now);
    if (saPending_ > 0)
        switchAllocation(now);
}

} // namespace ocor
