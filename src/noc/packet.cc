#include "noc/packet.hh"

#include <atomic>

#include "common/log.hh"

namespace ocor
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetM: return "GetM";
      case MsgType::PutM: return "PutM";
      case MsgType::PutE: return "PutE";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::Fetch: return "Fetch";
      case MsgType::FetchResp: return "FetchResp";
      case MsgType::Data: return "Data";
      case MsgType::DataExcl: return "DataExcl";
      case MsgType::WbAck: return "WbAck";
      case MsgType::Unblock: return "Unblock";
      case MsgType::MemRead: return "MemRead";
      case MsgType::MemWrite: return "MemWrite";
      case MsgType::MemResp: return "MemResp";
      case MsgType::LockTry: return "LockTry";
      case MsgType::LockGrant: return "LockGrant";
      case MsgType::LockFail: return "LockFail";
      case MsgType::LockFreeNotify: return "LockFreeNotify";
      case MsgType::LockRelease: return "LockRelease";
      case MsgType::FutexWait: return "FutexWait";
      case MsgType::FutexWake: return "FutexWake";
      case MsgType::WakeNotify: return "WakeNotify";
      default: return "?";
    }
}

bool
isLockProtocol(MsgType t)
{
    switch (t) {
      case MsgType::LockTry:
      case MsgType::LockGrant:
      case MsgType::LockFail:
      case MsgType::LockFreeNotify:
      case MsgType::LockRelease:
      case MsgType::FutexWait:
      case MsgType::FutexWake:
      case MsgType::WakeNotify:
        return true;
      default:
        return false;
    }
}

bool
carriesData(MsgType t)
{
    switch (t) {
      case MsgType::PutM:
      case MsgType::FetchResp:
      case MsgType::Data:
      case MsgType::DataExcl:
      case MsgType::MemWrite:
      case MsgType::MemResp:
        return true;
      default:
        return false;
    }
}

unsigned
packetFlits(MsgType t)
{
    return carriesData(t) ? dataPacketFlits : 1;
}

PacketPtr
makePacket(MsgType type, NodeId src, NodeId dst, Addr addr)
{
    static std::atomic<std::uint64_t> nextId{1};
    auto pkt = std::make_shared<Packet>();
    pkt->id = nextId.fetch_add(1, std::memory_order_relaxed);
    pkt->type = type;
    pkt->src = src;
    pkt->dst = dst;
    pkt->addr = addr;
    pkt->numFlits = packetFlits(type);
    return pkt;
}

PacketPtr
clonePacket(const Packet &orig)
{
    auto pkt = makePacket(orig.type, orig.src, orig.dst, orig.addr);
    pkt->numFlits = orig.numFlits;
    pkt->priority = orig.priority;
    pkt->thread = orig.thread;
    pkt->requester = orig.requester;
    pkt->aux = orig.aux;
    pkt->seq = orig.seq;
    pkt->attempt = orig.attempt + 1;
    return pkt;
}

std::string
Packet::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "pkt#%llu %s %u->%u addr=%llx",
                  static_cast<unsigned long long>(id), msgTypeName(type),
                  src, dst, static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace ocor
