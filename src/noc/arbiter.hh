/**
 * @file
 * Arbitration logic: round-robin base arbiter and the Local Priority
 * Arbiter (LPA) of Figure 9.
 *
 * The router uses a rank-based arbiter everywhere: each candidate
 * carries an integer rank (from priorityRank()); the arbiter picks
 * the maximum rank and breaks ties round-robin. With OCOR disabled
 * every rank is 0 and the arbiter degenerates to the baseline
 * round-robin VA/SA of the 2-stage speculative router.
 *
 * The Lpa class additionally models the comparator-free one-hot
 * datapath of Figure 9 (priority check bit gating + OR-reduction +
 * leading-one select) and is unit-tested to order packets exactly as
 * the rank arbiter does.
 */

#ifndef OCOR_NOC_ARBITER_HH
#define OCOR_NOC_ARBITER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/onehot.hh"
#include "core/priority.hh"

namespace ocor
{

/** Max-rank arbiter with a round-robin pointer for tie breaking. */
class Arbiter
{
  public:
    explicit Arbiter(unsigned num_inputs)
        : numInputs_(num_inputs), pointer_(0)
    {}

    /**
     * Pick among candidates.
     *
     * @param ranks one entry per input; negative == not requesting.
     * @return winning input index, or -1 when nobody requests.
     */
    int pick(std::span<const std::int64_t> ranks);

    /**
     * Fast path for the common single-requester case: grant input
     * @p idx directly, advancing the round-robin pointer exactly as
     * pick() would with one non-negative rank at @p idx. Callers
     * must only use this when @p idx is the sole requester —
     * otherwise fairness diverges from the full arbitration.
     */
    int grantSingle(unsigned idx);

    unsigned numInputs() const { return numInputs_; }
    unsigned pointer() const { return pointer_; }

  private:
    unsigned numInputs_;
    unsigned pointer_;
};

/** One candidate VC presented to the LPA. */
struct LpaInput
{
    bool valid = false;          ///< VC has a requesting flit
    PriorityFields fields;       ///< header fields of that flit
};

/** Output of the LPA (Figure 9): level word + index mask. */
struct LpaResult
{
    /**
     * Highest priority level present among valid inputs, as a one-hot
     * word over the *extended* level space (progress-major). Zero
     * when only normal packets (or nothing) request.
     */
    OneHot highestLevel = 0;

    /** Bit i set iff input i carries the highest priority. */
    std::uint64_t indexMask = 0;
};

/**
 * Comparator-free local priority arbitration (Figure 9).
 *
 * Stage a: the check bit gates each VC's priority bits; non-check
 * packets contribute no priority. Stage b: progress words are
 * OR-reduced and the *lowest* set bit (slowest progress = highest
 * priority) filters candidates. Stage c: priority words of the
 * filtered candidates are OR-reduced and the *highest* set bit
 * selects the winners. Normal packets win only when no priority
 * packet requests.
 */
LpaResult lpaSelect(const OcorConfig &cfg,
                    const std::vector<LpaInput> &inputs);

} // namespace ocor

#endif // OCOR_NOC_ARBITER_HH
