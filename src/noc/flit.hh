/**
 * @file
 * Flit model: the unit of link traversal and buffering.
 *
 * A packet of N flits is serialized as HEAD, BODY*, TAIL (a single
 * flit packet is HEAD_TAIL). Flits reference their parent packet so
 * routers can read routing/priority information from any flit of the
 * packet without duplicating the header.
 */

#ifndef OCOR_NOC_FLIT_HH
#define OCOR_NOC_FLIT_HH

#include "common/types.hh"
#include "noc/packet.hh"

namespace ocor
{

/** Position of a flit inside its packet. */
enum class FlitType : std::uint8_t { Head, Body, Tail, HeadTail };

/** One flit of a packet. */
struct Flit
{
    PacketPtr pkt;
    FlitType type = FlitType::HeadTail;
    unsigned index = 0;      ///< 0 .. pkt->numFlits-1
    unsigned vc = 0;         ///< VC currently occupied (rewritten per hop)

    /** Payload was bit-flipped in flight (fault injection); the sink
     * NI's CRC check catches it and discards the packet. */
    bool corrupted = false;

    bool isHead() const
    {
        return type == FlitType::Head || type == FlitType::HeadTail;
    }
    bool isTail() const
    {
        return type == FlitType::Tail || type == FlitType::HeadTail;
    }
};

/** Flit type for position @p index of an @p n flit packet. */
FlitType flitTypeFor(unsigned index, unsigned n);

} // namespace ocor

#endif // OCOR_NOC_FLIT_HH
